//! Raw syscall bindings and the per-OS [`Poller`] implementation.
//!
//! Everything here is declared directly against the C library the binary
//! already links — no `libc` crate, no build script. Linux gets the real
//! `epoll` backend (O(ready) wakeups, the fd set lives in the kernel);
//! other Unixes get a `poll(2)` fallback with the same level-triggered
//! semantics so the crate builds and tests everywhere.

use super::{Event, Interest};
use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Close a descriptor, ignoring errors (double-close is a bug upstream;
/// EINTR on close is unrecoverable anyway).
pub(crate) fn close_fd(fd: RawFd) {
    unsafe {
        close(fd);
    }
}

/// Write one byte, ignoring the result (a full pipe means a wakeup is
/// already pending).
pub(crate) fn write_byte(fd: RawFd) -> io::Result<()> {
    let byte = 1u8;
    let n = unsafe { write(fd, (&byte as *const u8).cast(), 1) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// Read a non-blocking descriptor dry; returns the bytes drained.
pub(crate) fn drain_fd(fd: RawFd) -> u64 {
    let mut total = 0u64;
    let mut buf = [0u8; 64];
    loop {
        let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n <= 0 {
            return total; // EAGAIN, EOF, or a racing drain — all fine
        }
        total += n as u64;
    }
}

/// Clamp an optional timeout to the millisecond `c_int` the syscalls
/// take: `None` means block forever (-1), sub-millisecond waits round up
/// so a caller asking for "a moment" never busy-spins at timeout 0.
fn timeout_millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            if ms == 0 && t.as_nanos() > 0 {
                1
            } else {
                ms.min(c_int::MAX as u128) as c_int
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    // The kernel ABI struct: packed on x86-64 (12 bytes), naturally
    // aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    }

    pub(crate) fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Level-triggered epoll instance. The registered-fd set lives in the
    /// kernel, so `wait` costs O(ready events), not O(registered fds) —
    /// ten thousand parked connections cost nothing per wakeup.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// A fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        /// Watch `fd` for `interest`, reporting events with `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Change the interest or token of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Block until readiness or timeout; fills `events` (cleared
        /// first) and returns how many fired. `None` blocks forever.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 128];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    raw.len() as c_int,
                    timeout_millis(timeout),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for ev in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) ABI struct before use.
                let mask = ev.events;
                let token = ev.data;
                events.push(Event {
                    token,
                    readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            close_fd(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    // O_NONBLOCK on the BSD family (macOS included).
    const O_NONBLOCK: c_int = 0x0004;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub(crate) fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok((fds[0], fds[1]))
    }

    /// `poll(2)` fallback: the fd set lives in user space and each wait
    /// is O(registered fds). Correctness-equivalent to the Linux epoll
    /// backend; only the scaling constant differs.
    pub struct Poller {
        fds: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        /// A fresh poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Mutex::new(Vec::new()),
            })
        }

        /// Watch `fd` for `interest`, reporting events with `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            if fds.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            fds.push((fd, token, interest));
            Ok(())
        }

        /// Change the interest or token of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            for entry in fds.iter_mut() {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut fds = self.fds.lock().unwrap();
            let before = fds.len();
            fds.retain(|(f, _, _)| *f != fd);
            if fds.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Block until readiness or timeout; fills `events` (cleared
        /// first) and returns how many fired. `None` blocks forever.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let registered: Vec<(RawFd, u64, Interest)> = self.fds.lock().unwrap().clone();
            let mut pollfds: Vec<PollFd> = registered
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe {
                poll(
                    pollfds.as_mut_ptr(),
                    pollfds.len() as u64,
                    timeout_millis(timeout),
                )
            };
            if n < 0 {
                return Err(io::Error::last_os_error());
            }
            for (pollfd, (_, token, _)) in pollfds.iter().zip(registered.iter()) {
                let re = pollfd.revents;
                if re == 0 {
                    continue;
                }
                events.push(Event {
                    token: *token,
                    readable: re & (POLLIN | POLLHUP) != 0,
                    writable: re & POLLOUT != 0,
                    hangup: re & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(unix))]
compile_error!("re_net supports Unix targets only (epoll on Linux, poll(2) elsewhere)");

pub(crate) use imp::nonblocking_pipe;
pub use imp::Poller;
