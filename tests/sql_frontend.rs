//! Integration tests for the SQL front-end: statements written the way the
//! paper writes its workload queries (Figure 4) must produce exactly the
//! same answers as the equivalent queries built through the programmatic
//! API, and the answers must satisfy the ranked-enumeration contract.

mod common;

use common::{assert_valid_ranked_output, reference_answers};
use rankedenum::prelude::*;
use rankedenum::sql::{PlannedQuery, SqlError};

/// A DBLP-shaped database with a membership relation and a dimension table.
fn dblp_db() -> Database {
    let mut author_papers = Vec::new();
    let mut papers = Vec::new();
    for p in 0u64..40 {
        let pid = 1000 + p;
        for aid in [1 + p % 11, 15 + p % 7, 25 + (p * 3) % 5] {
            author_papers.push(vec![aid, pid]);
        }
        papers.push(vec![pid, u64::from(p % 4 != 0)]);
    }
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples("AuthorPapers", attrs(["aid", "pid"]), author_papers).unwrap(),
    )
    .unwrap();
    db.add_relation(Relation::with_tuples("Paper", attrs(["pid", "is_research"]), papers).unwrap())
        .unwrap();
    db
}

#[test]
fn sql_two_hop_matches_programmatic_query() {
    let db = dblp_db();
    let via_sql = sql_query(
        &db,
        "SELECT DISTINCT AP1.aid, AP2.aid FROM AuthorPapers AS AP1, AuthorPapers AS AP2 \
         WHERE AP1.pid = AP2.pid ORDER BY AP1.aid + AP2.aid",
    )
    .unwrap();

    let query = QueryBuilder::new()
        .atom("AP1", "AuthorPapers", ["AP1.aid", "p"])
        .atom("AP2", "AuthorPapers", ["AP2.aid", "p"])
        .project(["AP1.aid", "AP2.aid"])
        .build()
        .unwrap();
    let ranking = SumRanking::value_sum();
    let direct: Vec<Tuple> = AcyclicEnumerator::new(&query, &db, ranking.clone())
        .unwrap()
        .collect();
    assert_eq!(via_sql.rows, direct);

    let reference = reference_answers(&query, &db, &ranking);
    assert_valid_ranked_output(&via_sql.rows, &reference, &query, &ranking);
}

#[test]
fn sql_filtered_three_hop_matches_reference() {
    let db = dblp_db();
    let via_sql = sql_query(
        &db,
        "SELECT DISTINCT AP1.aid, AP3.aid \
         FROM AuthorPapers AS AP1, AuthorPapers AS AP2, AuthorPapers AS AP3, Paper AS P \
         WHERE AP1.pid = AP2.pid AND AP2.aid = AP3.aid AND AP3.pid = P.pid \
           AND P.is_research = TRUE \
         ORDER BY AP1.aid + AP3.aid",
    )
    .unwrap();

    // Reference: filter the Paper relation by hand, then run the equivalent
    // programmatic query.
    let mut filtered = db.clone();
    let research = filtered
        .relation("Paper")
        .unwrap()
        .select_eq(&Attr::new("is_research"), 1)
        .unwrap();
    filtered.set_relation({
        let mut r = research;
        r.set_name("ResearchPaper");
        r
    });
    let query = QueryBuilder::new()
        .atom("AP1", "AuthorPapers", ["AP1.aid", "p1"])
        .atom("AP2", "AuthorPapers", ["mid", "p1"])
        .atom("AP3", "AuthorPapers", ["mid", "p2"])
        .atom("P", "ResearchPaper", ["p2", "flag"])
        .project(["AP1.aid", "mid"])
        .build()
        .unwrap();
    let ranking = SumRanking::value_sum();
    let reference = reference_answers(&query, &filtered, &ranking);
    // Attribute names differ between the SQL plan and the handwritten query
    // ("AP3.aid" vs our alias), so compare as ranked sets of tuples.
    assert_eq!(via_sql.rows.len(), reference.len());
    let got: std::collections::HashSet<Tuple> = via_sql.rows.iter().cloned().collect();
    let want: std::collections::HashSet<Tuple> = reference.iter().cloned().collect();
    assert_eq!(got, want);
    // and the SQL answers are in non-decreasing endpoint-sum order
    let sums: Vec<u64> = via_sql.rows.iter().map(|r| r[0] + r[1]).collect();
    assert!(sums.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn selecting_the_same_unified_column_collapses_to_one() {
    // SELECTing the same unified column twice collapses to one output column
    // (set semantics over the projected variables).
    let db = dblp_db();
    let result = sql_query(
        &db,
        "SELECT DISTINCT AP1.aid, AP2.aid FROM AuthorPapers AS AP1, AuthorPapers AS AP2 \
         WHERE AP1.aid = AP2.aid ORDER BY AP1.aid",
    )
    .unwrap();
    assert!(result.rows.iter().all(|r| r.len() == 1));
    let mut authors: Vec<u64> = result.rows.iter().map(|r| r[0]).collect();
    let mut sorted = authors.clone();
    sorted.sort_unstable();
    assert_eq!(authors, sorted);
    authors.dedup();
    assert_eq!(authors.len(), result.rows.len());
}

#[test]
fn sql_limit_is_a_prefix_of_the_unlimited_answer() {
    let db = dblp_db();
    let sql_all = "SELECT DISTINCT AP1.aid, AP2.aid \
                   FROM AuthorPapers AS AP1, AuthorPapers AS AP2 \
                   WHERE AP1.pid = AP2.pid ORDER BY AP1.aid + AP2.aid";
    let all = sql_query(&db, sql_all).unwrap();
    for k in [1usize, 5, 17, 100] {
        let limited = sql_query(&db, &format!("{sql_all} LIMIT {k}")).unwrap();
        let expect = k.min(all.rows.len());
        assert_eq!(limited.rows.len(), expect);
        assert_eq!(&limited.rows[..], &all.rows[..expect]);
    }
}

#[test]
fn sql_union_equals_manual_union_query() {
    let mut db = dblp_db();
    db.add_relation(
        Relation::with_tuples(
            "PersonMovie",
            attrs(["pid", "mid"]),
            vec![vec![2, 7], vec![3, 7], vec![9, 8], vec![2, 8]],
        )
        .unwrap(),
    )
    .unwrap();
    let via_sql = sql_query(
        &db,
        "SELECT DISTINCT AP1.aid, AP2.aid FROM AuthorPapers AS AP1, AuthorPapers AS AP2 \
         WHERE AP1.pid = AP2.pid \
         UNION \
         SELECT DISTINCT PM1.pid, PM2.pid FROM PersonMovie AS PM1, PersonMovie AS PM2 \
         WHERE PM1.mid = PM2.mid \
         ORDER BY PM1.pid + PM2.pid",
    )
    .unwrap();

    let branch = |rel: &str, x: &str, y: &str, c: &str| {
        QueryBuilder::new()
            .atom("B1", rel, [x, c])
            .atom("B2", rel, [y, c])
            .project([x, y])
            .build()
            .unwrap()
    };
    let b1 = branch("AuthorPapers", "AP1.aid", "AP2.aid", "p");
    let b2 = branch("PersonMovie", "AP1.aid", "AP2.aid", "m");
    let union = UnionQuery::new(vec![b1, b2]).unwrap();
    let direct: Vec<Tuple> = UnionEnumerator::new(&union, &db, SumRanking::value_sum())
        .unwrap()
        .collect();
    assert_eq!(via_sql.rows, direct);
}

#[test]
fn sql_error_paths_are_reported_not_panicked() {
    let db = dblp_db();
    for (sql, kind) in [
        ("SELECT DISTINCT x FROM", "parse"),
        ("SELECT DISTINCT x FROM NoTable", "resolution"),
        (
            "SELECT DISTINCT AP.nope FROM AuthorPapers AS AP",
            "resolution",
        ),
        ("SELECT aid FROM AuthorPapers", "unsupported"),
        (
            "SELECT DISTINCT AP.aid FROM AuthorPapers AS AP ORDER BY AP.pid",
            "unsupported",
        ),
    ] {
        let err = sql_query(&db, sql).unwrap_err();
        match kind {
            "parse" => assert!(matches!(err, SqlError::Parse { .. }), "{sql}: {err}"),
            "resolution" => assert!(matches!(err, SqlError::Resolution(_)), "{sql}: {err}"),
            _ => assert!(matches!(err, SqlError::Unsupported(_)), "{sql}: {err}"),
        }
    }
}

#[test]
fn sql_plan_exposes_the_compiled_query_shape() {
    let db = dblp_db();
    let exec = SqlExecutor::new(&db);
    let plan = exec
        .plan(
            "SELECT DISTINCT AP1.aid, AP2.aid \
             FROM AuthorPapers AS AP1, AuthorPapers AS AP2, Paper AS P \
             WHERE AP1.pid = AP2.pid AND AP1.pid = P.pid AND P.is_research = TRUE \
             ORDER BY AP1.aid + AP2.aid LIMIT 10",
        )
        .unwrap();
    let PlannedQuery::Single(q) = &plan.query else {
        panic!("expected a single join-project query");
    };
    assert_eq!(q.atoms().len(), 3);
    assert_eq!(q.projection().len(), 2);
    assert!(!q.is_full());
    assert_eq!(plan.limit, Some(10));
    assert_eq!(plan.derived.len(), 1);
    assert_eq!(plan.output_columns, vec!["AP1.aid", "AP2.aid"]);
}
