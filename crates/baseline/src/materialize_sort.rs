//! The RDBMS-style blocking baseline: materialise → de-duplicate → sort.

use rankedenum_core::EnumError;
use re_join::{full_join, project_distinct};
use re_query::JoinProjectQuery;
use re_ranking::Ranking;
use re_storage::{Database, Tuple};

/// Execution metrics of the blocking plan — the quantities the paper uses to
/// explain why the baselines are slow and memory-hungry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaterializeReport {
    /// Number of tuples of the full (unprojected) join.
    pub full_join_size: usize,
    /// Number of distinct projected tuples.
    pub distinct_size: usize,
}

/// The blocking `materialise + DISTINCT + ORDER BY + LIMIT` plan used by
/// MariaDB, PostgreSQL and Neo4j for ranked join-project queries.
#[derive(Clone, Debug, Default)]
pub struct MaterializeSortEngine;

impl MaterializeSortEngine {
    /// Create the engine.
    pub fn new() -> Self {
        MaterializeSortEngine
    }

    /// Run the blocking plan and return the top-`k` answers plus metrics.
    ///
    /// Note that — exactly like the real engines — the amount of work is the
    /// same for every `k` and every ranking function: the full join is
    /// materialised and fully sorted before the limit is applied.
    pub fn top_k<R: Ranking>(
        &self,
        query: &JoinProjectQuery,
        db: &Database,
        ranking: &R,
        k: usize,
    ) -> Result<(Vec<Tuple>, MaterializeReport), EnumError> {
        let joined = full_join(query, db)?;
        let full_join_size = joined.len();
        let distinct = project_distinct(&joined, query.projection())?;
        let distinct_size = distinct.len();

        let plan = ranking.plan(query.projection());
        let mut rows: Vec<(R::Key, Tuple)> = distinct
            .iter()
            .map(|t| (ranking.key(&plan, t), t.to_vec()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        rows.truncate(k);
        Ok((
            rows.into_iter().map(|(_, t)| t).collect(),
            MaterializeReport {
                full_join_size,
                distinct_size,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankedenum_core::AcyclicEnumerator;
    use re_query::QueryBuilder;
    use re_ranking::SumRanking;
    use re_storage::{attr::attrs, Relation};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "AP",
                attrs(["aid", "pid"]),
                vec![
                    vec![1, 10],
                    vec![2, 10],
                    vec![3, 10],
                    vec![1, 11],
                    vec![4, 11],
                    vec![5, 12],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn two_hop() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("AP1", "AP", ["a1", "p"])
            .atom("AP2", "AP", ["a2", "p"])
            .project(["a1", "a2"])
            .build()
            .unwrap()
    }

    #[test]
    fn matches_the_enumeration_algorithm() {
        let db = db();
        let q = two_hop();
        let ranking = SumRanking::value_sum();
        let (baseline, report) = MaterializeSortEngine::new()
            .top_k(&q, &db, &ranking, usize::MAX)
            .unwrap();
        let ours: Vec<Tuple> = AcyclicEnumerator::new(&q, &db, ranking).unwrap().collect();
        assert_eq!(baseline, ours);
        // 3 authors on paper 10 → 9 pairs, 2 on paper 11 → 4, 1 on 12 → 1.
        assert_eq!(report.full_join_size, 14);
        // distinct pairs: 9 + 4 + 1 − overlap {(1,1)} = 13
        assert_eq!(report.distinct_size, 13);
    }

    #[test]
    fn limit_is_applied_after_the_blocking_phase() {
        let db = db();
        let q = two_hop();
        let ranking = SumRanking::value_sum();
        let (top3, report) = MaterializeSortEngine::new()
            .top_k(&q, &db, &ranking, 3)
            .unwrap();
        assert_eq!(top3.len(), 3);
        assert_eq!(top3[0], vec![1, 1]);
        // The report shows the full join was still materialised.
        assert_eq!(report.full_join_size, 14);
    }

    #[test]
    fn empty_result() {
        let mut d = Database::new();
        d.add_relation(Relation::new("AP", attrs(["aid", "pid"])))
            .unwrap();
        let (rows, report) = MaterializeSortEngine::new()
            .top_k(&two_hop(), &d, &SumRanking::value_sum(), 10)
            .unwrap();
        assert!(rows.is_empty());
        assert_eq!(report.full_join_size, 0);
        assert_eq!(report.distinct_size, 0);
    }
}
