//! Ranked enumeration for cyclic queries via GHDs (Theorem 3).
//!
//! A cyclic join-project query is evaluated by materialising each bag of a
//! [`GhdPlan`] (a sub-join of width ≤ fhw), after which the residual query
//! over the bag relations is acyclic and is handed to the
//! [`AcyclicEnumerator`]. The preprocessing cost grows to
//! `O(|D|^{fhw} log |D|)` — the price the paper shows is unavoidable under
//! standard hardness conjectures (Appendix F).

use crate::acyclic::AcyclicEnumerator;
use crate::error::EnumError;
use crate::stats::EnumStats;
use re_exec::ExecContext;
use re_join::{materialize_bags_reported, BagKernel};
use re_query::{Atom, GhdPlan, JoinProjectQuery, JoinTree, QueryError};
use re_ranking::Ranking;
use re_storage::{Attr, Database, Tuple};

/// How the GHD plan behind a [`CyclicEnumerator`] was chosen — surfaced all
/// the way to the server `stats` endpoint so a silent degradation to full
/// materialisation is visible, not swallowed.
#[derive(Clone, Debug)]
pub struct GhdReport {
    /// The plan shape (`"cycle-figure2"`, `"cycle-split(s,t)"`,
    /// `"single-bag"`, `"explicit"`).
    pub shape: String,
    /// Number of bags in the plan.
    pub bags: usize,
    /// Rounded AGM estimate from cost-based selection, when it ran.
    pub estimated_rows: Option<u64>,
    /// Why selection fell back to single-bag full materialisation, when
    /// it did.
    pub fallback: Option<String>,
    /// Candidate plans compared by cost-based selection (0 when the plan
    /// was supplied explicitly).
    pub candidates: usize,
    /// Per-bag build facts, in plan bag order.
    pub bag_details: Vec<BagDetail>,
}

/// Per-bag materialisation facts: what EXPLAIN ANALYZE prints as the
/// estimate-vs-actual line for each bag of the GHD.
#[derive(Clone, Debug)]
pub struct BagDetail {
    /// Bag (and bag relation) name.
    pub name: String,
    /// Atoms joined inside the bag.
    pub atoms: u64,
    /// Attribute order the bag kernel bound, as strings.
    pub attr_order: Vec<String>,
    /// Rounded per-bag AGM estimate, when cost-based selection produced
    /// one.
    pub estimated_rows: Option<u64>,
    /// Rows actually materialised.
    pub actual_rows: u64,
    /// Trie intersections the generic-join walker performed (0 for the
    /// cascade kernel).
    pub intersections: u64,
}

/// Ranked enumerator for (possibly) cyclic queries, driven by a GHD plan.
pub struct CyclicEnumerator<R: Ranking + Clone> {
    inner: AcyclicEnumerator<R>,
    bag_sizes: Vec<usize>,
    report: GhdReport,
}

impl<R: Ranking + Clone> CyclicEnumerator<R> {
    /// Build the enumerator from an explicit GHD plan.
    pub fn new(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        plan: &GhdPlan,
    ) -> Result<Self, EnumError> {
        Self::new_ctx(query, db, ranking, plan, &ExecContext::serial())
    }

    /// Build the enumerator from an explicit GHD plan under an execution
    /// context with the default (generic join) bag kernel. On a pooled
    /// context the bags are materialised as parallel pool tasks (they are
    /// independent sub-joins) and the kernels inside each bag fan out
    /// further over morsels of the same pool. Bag materialisation dominates
    /// cyclic preprocessing, so this is where the cores go.
    ///
    /// Determinism contract: the bag relations, `bag_sizes()` and the full
    /// enumeration order are identical to the serial build at any thread
    /// count.
    pub fn new_ctx(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        plan: &GhdPlan,
        ctx: &ExecContext,
    ) -> Result<Self, EnumError> {
        Self::new_ctx_with_kernel(query, db, ranking, plan, ctx, BagKernel::default())
    }

    /// [`CyclicEnumerator::new_ctx`] with an explicit bag-materialisation
    /// kernel. Both kernels produce canonical (sorted, distinct) bag
    /// relations, so the enumeration sequence does not depend on the
    /// kernel — the `wcoj_differential` suite holds this as a contract.
    pub fn new_ctx_with_kernel(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        plan: &GhdPlan,
        ctx: &ExecContext,
        kernel: BagKernel,
    ) -> Result<Self, EnumError> {
        Self::build(query, db, ranking, plan, ctx, kernel, None, 0)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        plan: &GhdPlan,
        ctx: &ExecContext,
        kernel: BagKernel,
        fallback: Option<String>,
        candidates: usize,
    ) -> Result<Self, EnumError> {
        query.validate_against(db)?;
        let mut bag_db = Database::new();
        let mut atoms = Vec::with_capacity(plan.len());
        let mut bag_sizes = Vec::with_capacity(plan.len());
        let mut bag_details = Vec::with_capacity(plan.len());
        let built = materialize_bags_reported(query, db, plan.bags(), ctx, kernel)?;
        for (i, (bag, (rel, info))) in plan.bags().iter().zip(built).enumerate() {
            bag_sizes.push(rel.len());
            bag_details.push(BagDetail {
                name: info.name,
                atoms: info.atoms,
                attr_order: info.attr_order.iter().map(|a| a.to_string()).collect(),
                estimated_rows: plan
                    .bag_estimates()
                    .and_then(|ests| ests.get(i))
                    .map(|e| e.round() as u64),
                actual_rows: info.rows,
                intersections: info.intersections,
            });
            atoms.push(Atom::new(
                bag.name.clone(),
                bag.name.clone(),
                bag.attrs.clone(),
            ));
            bag_db.set_relation(rel);
        }
        let residual = JoinProjectQuery::new(atoms, query.projection().to_vec())?;
        let tree = match JoinTree::build(&residual) {
            Ok(t) => t,
            Err(QueryError::NotAcyclic) => return Err(EnumError::ResidualCyclic),
            Err(e) => return Err(EnumError::Query(e)),
        };
        let mut inner = AcyclicEnumerator::with_tree_ctx(&residual, &bag_db, ranking, tree, ctx)?;
        let report = GhdReport {
            shape: plan.shape().to_string(),
            bags: plan.len(),
            estimated_rows: plan.estimated_rows().map(|e| e.round() as u64),
            fallback,
            candidates,
            bag_details,
        };
        let stats = inner.stats_mut();
        stats.ghd_bags = report.bags as u64;
        stats.ghd_estimated_rows = report.estimated_rows.unwrap_or(0);
        stats.ghd_fallbacks = u64::from(report.fallback.is_some());
        Ok(CyclicEnumerator {
            inner,
            bag_sizes,
            report,
        })
    }

    /// Build the enumerator choosing a plan automatically by cost-based
    /// GHD selection ([`GhdPlan::cost_based`]): the candidate decomposition
    /// with the smallest AGM bag-size estimate wins; only when no
    /// decomposition applies does the single-bag (full materialisation)
    /// fallback run — and then the reason is recorded in
    /// [`CyclicEnumerator::plan_report`] instead of being swallowed.
    pub fn new_auto(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
    ) -> Result<Self, EnumError> {
        Self::new_auto_ctx(query, db, ranking, &ExecContext::serial())
    }

    /// [`CyclicEnumerator::new_auto`] under an execution context.
    pub fn new_auto_ctx(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        ctx: &ExecContext,
    ) -> Result<Self, EnumError> {
        let ghd_span = re_obs::Span::enter("preprocess.ghd_select");
        let (plan, fallback, candidates) = match GhdPlan::cost_based(query, db) {
            Ok(sel) => {
                let fallback = if sel.plan.shape() == "single-bag" {
                    Some(
                        sel.cycle_error
                            .unwrap_or_else(|| "no cycle decomposition applicable".to_string()),
                    )
                } else {
                    None
                };
                (sel.plan, fallback, sel.considered)
            }
            Err(e) => (GhdPlan::single_bag(query), Some(e.to_string()), 0),
        };
        drop(ghd_span);
        Self::build(
            query,
            db,
            ranking,
            &plan,
            ctx,
            BagKernel::default(),
            fallback,
            candidates,
        )
    }

    /// Sizes of the materialised bag relations (preprocessing cost proxy).
    pub fn bag_sizes(&self) -> &[usize] {
        &self.bag_sizes
    }

    /// How the GHD plan was chosen (shape, bag count, estimate, fallback
    /// reason when full materialisation had to run).
    pub fn plan_report(&self) -> &GhdReport {
        &self.report
    }

    /// The projection attributes, in output order.
    pub fn output_attrs(&self) -> &[Attr] {
        self.inner.output_attrs()
    }

    /// Statistics of the residual acyclic enumeration.
    pub fn stats(&self) -> &EnumStats {
        self.inner.stats()
    }
}

impl<R: Ranking + Clone> Iterator for CyclicEnumerator<R> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        self.inner.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_ranking::{Ranking, SumRanking};
    use re_storage::attr::attrs;
    use re_storage::Relation;

    fn edge_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["src", "dst"]),
                edges.iter().map(|&(a, b)| vec![a, b]),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn four_cycle_query() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap()
    }

    #[test]
    fn four_cycle_enumeration_in_rank_order() {
        // Two squares: 1-2-3-4 and 5-6-7-8, plus noise edges.
        let db = edge_db(&[
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 5),
            (1, 9),
            (9, 3),
        ]);
        let q = four_cycle_query();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        let e = CyclicEnumerator::new(&q, &db, SumRanking::value_sum(), &plan).unwrap();
        let results: Vec<Tuple> = e.collect();
        // Expected distinct (a1, a3) pairs of 4-cycles: from square 1:
        // (1,3),(2,4),(3,1),(4,2); via the 1-9-3 chord with 3-4-1 we get a
        // 4-cycle 1-9-3-4? edges 1→9, 9→3, 3→4, 4→1: yes → (1,3) again and
        // (9,4)? that cycle's (a1,a3) rotations: a1=1,a3=3 and a1=9,a3=1 ...
        // Instead of enumerating by hand, just check ordering & distinctness.
        assert!(!results.is_empty());
        let ranking = SumRanking::value_sum();
        let mut last = None;
        let mut seen = std::collections::HashSet::new();
        for t in &results {
            assert!(seen.insert(t.clone()), "duplicate {t:?}");
            let k = ranking.key_of(&attrs(["a1", "a3"]), t);
            if let Some(prev) = last {
                assert!(k >= prev);
            }
            last = Some(k);
        }
        assert!(results.contains(&vec![1, 3]));
        assert!(results.contains(&vec![2, 4]));
    }

    #[test]
    fn cycle_plan_and_single_bag_agree() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (4, 1), (2, 5), (5, 4), (7, 7)]);
        let q = four_cycle_query();
        let via_cycle: Vec<Tuple> = CyclicEnumerator::new(
            &q,
            &db,
            SumRanking::value_sum(),
            &GhdPlan::for_cycle(&q).unwrap(),
        )
        .unwrap()
        .collect();
        let via_single: Vec<Tuple> =
            CyclicEnumerator::new(&q, &db, SumRanking::value_sum(), &GhdPlan::single_bag(&q))
                .unwrap()
                .collect();
        assert_eq!(via_cycle, via_single);
        // A self-loop vertex forms a 4-cycle with itself.
        assert!(via_cycle.contains(&vec![7, 7]));
    }

    #[test]
    fn triangle_via_single_bag() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 1), (4, 5)]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["x", "y"])
            .atom("R2", "E", ["y", "z"])
            .atom("R3", "E", ["z", "x"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let e = CyclicEnumerator::new_auto(&q, &db, SumRanking::value_sum()).unwrap();
        let results: Vec<Tuple> = e.collect();
        // (x,z) projections of the triangle's rotations, ranked by x+z.
        assert_eq!(results, vec![vec![2, 1], vec![1, 3], vec![3, 2]]);
    }

    #[test]
    fn bag_sizes_are_reported() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let q = four_cycle_query();
        let e = CyclicEnumerator::new_auto(&q, &db, SumRanking::value_sum()).unwrap();
        assert_eq!(e.bag_sizes().len(), 2);
        assert!(e.bag_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn empty_cyclic_result() {
        let db = edge_db(&[(1, 2), (3, 4)]);
        let q = four_cycle_query();
        let mut e = CyclicEnumerator::new_auto(&q, &db, SumRanking::value_sum()).unwrap();
        assert_eq!(e.next(), None);
    }

    #[test]
    fn auto_plans_are_reported_and_fallbacks_carry_a_reason() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let q = four_cycle_query();
        let e = CyclicEnumerator::new_auto(&q, &db, SumRanking::value_sum()).unwrap();
        let report = e.plan_report();
        assert!(report.shape.starts_with("cycle-"), "{}", report.shape);
        assert_eq!(report.bags, 2);
        assert!(report.estimated_rows.is_some());
        assert!(report.fallback.is_none());
        assert!(report.candidates > 1, "cost-based selection compared plans");
        assert_eq!(report.bag_details.len(), 2);
        for (detail, &size) in report.bag_details.iter().zip(e.bag_sizes()) {
            assert_eq!(detail.actual_rows, size as u64);
            assert!(detail.estimated_rows.is_some());
            assert!(detail.atoms > 0);
            assert!(!detail.attr_order.is_empty());
        }
        assert_eq!(e.stats().ghd_bags, 2);
        assert_eq!(e.stats().ghd_fallbacks, 0);
        assert!(e.stats().ghd_estimated_rows > 0);

        // A chorded declaration order is not a cycle: selection must fall
        // back to full materialisation and say why.
        let chorded = QueryBuilder::new()
            .atom("R1", "E", ["a", "b"])
            .atom("R2", "E", ["c", "d"])
            .atom("R3", "E", ["b", "c"])
            .atom("R4", "E", ["d", "a"])
            .project(["a", "c"])
            .build()
            .unwrap();
        let e = CyclicEnumerator::new_auto(&chorded, &db, SumRanking::value_sum()).unwrap();
        let report = e.plan_report();
        assert_eq!(report.shape, "single-bag");
        let reason = report
            .fallback
            .as_deref()
            .expect("fallback reason recorded");
        assert!(reason.contains("share no variable"), "{reason}");
        assert_eq!(e.stats().ghd_fallbacks, 1);
    }
}
