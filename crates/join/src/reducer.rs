//! Semi-joins and the Yannakakis full reducer.
//!
//! The preprocessing phase of every enumerator in the paper assumes the
//! instance contains no *dangling* tuples — tuples that cannot contribute to
//! any join result. The classical Yannakakis full reducer removes them with
//! two sweeps of semi-joins over a join tree: a bottom-up pass
//! (`parent ⋉ child`) followed by a top-down pass (`child ⋉ parent`).

use crate::bind::bind_atoms;
use crate::error::JoinError;
use crate::parallel::par_semi_join;
use re_exec::ExecContext;
use re_query::{JoinProjectQuery, JoinTree};
use re_storage::{Attr, Database, HashIndex, Relation};
use std::collections::BTreeSet;

/// Keep only the tuples of `left` whose shared-attribute values appear in
/// `right` (`left ⋉ right`). If the relations share no attributes this is a
/// no-op when `right` is non-empty and empties `left` otherwise (standard
/// semi-join semantics under natural join).
pub fn semi_join(left: &mut Relation, right: &Relation) -> Result<(), JoinError> {
    let shared = shared_attrs(left, right);
    if shared.is_empty() {
        if right.is_empty() {
            left.retain(|_| false);
        }
        return Ok(());
    }
    let left_pos = left.positions(&shared)?;
    let right_index = HashIndex::build(right, &shared)?;
    let mut key = Vec::with_capacity(shared.len());
    left.retain(|t| {
        key.clear();
        key.extend(left_pos.iter().map(|&p| t[p]));
        right_index.contains(&key)
    });
    Ok(())
}

/// Per-operator counters of one full-reducer run: every semi-join pass
/// contributes its filtered relation's row count before and after, so
/// `input_rows - output_rows` is exactly the dangling tuples removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Semi-join passes executed (bottom-up plus top-down).
    pub passes: u64,
    /// Rows entering the filtered side of each pass, summed.
    pub input_rows: u64,
    /// Rows surviving each pass, summed.
    pub output_rows: u64,
}

impl ReduceStats {
    /// Rows the reducer removed, summed over all passes.
    pub fn filtered_rows(&self) -> u64 {
        self.input_rows.saturating_sub(self.output_rows)
    }

    /// Fold another run's counters into this one (composite enumerators
    /// reduce once per branch).
    pub fn merge(&mut self, other: &ReduceStats) {
        self.passes += other.passes;
        self.input_rows += other.input_rows;
        self.output_rows += other.output_rows;
    }
}

/// Run the full reducer over already-bound per-node relations.
///
/// `relations[i]` must be the relation of join-tree node `i` (attribute
/// names are query variables). After the call every relation contains
/// exactly its non-dangling tuples.
pub fn full_reduce_relations(
    tree: &JoinTree,
    relations: &mut [Relation],
) -> Result<ReduceStats, JoinError> {
    full_reduce_relations_ctx(&ExecContext::serial(), tree, relations)
}

/// One instrumented semi-join pass: `left ⋉ right`, counted into `stats`
/// and (when a request trace is installed) recorded as a `reduce.pass`
/// trace span carrying the pair and the row movement.
fn reduce_pass(
    ctx: &ExecContext,
    left: &mut Relation,
    right: &Relation,
    direction: &str,
    stats: &mut ReduceStats,
) -> Result<(), JoinError> {
    // Pass boundary: the cancellation poll point of the reducer sweeps,
    // and the `reduce.pass` failpoint.
    ctx.check_cancelled()?;
    re_fault::fire("reduce.pass")?;
    let input = left.len() as u64;
    let mut span = re_obs::trace::child_span("reduce.pass");
    par_semi_join(ctx, left, right)?;
    let output = left.len() as u64;
    stats.passes += 1;
    stats.input_rows += input;
    stats.output_rows += output;
    if let Some(s) = span.as_mut() {
        use re_obs::AttrValue;
        s.set_attr("left", AttrValue::Str(left.name().to_string()));
        s.set_attr("right", AttrValue::Str(right.name().to_string()));
        s.set_attr("direction", AttrValue::Str(direction.to_string()));
        s.set_attr("input_rows", AttrValue::U64(input));
        s.set_attr("output_rows", AttrValue::U64(output));
        s.set_attr("filtered_rows", AttrValue::U64(input - output));
    }
    Ok(())
}

/// [`full_reduce_relations`] under an execution context: the semi-join
/// sweeps follow the same tree order (they are data-dependent along the
/// tree), but each individual semi-join probes its morsels in parallel on
/// large relations. The reduced relations are identical to the serial
/// reducer's at any thread count.
pub fn full_reduce_relations_ctx(
    ctx: &ExecContext,
    tree: &JoinTree,
    relations: &mut [Relation],
) -> Result<ReduceStats, JoinError> {
    assert_eq!(tree.len(), relations.len());
    let _span = re_obs::Span::enter("preprocess.reduce");
    let mut trace_span = re_obs::trace::child_span("preprocess.reduce");
    let mut stats = ReduceStats::default();
    let post = tree.post_order();
    // Bottom-up: parent ⋉ child.
    for &u in &post {
        if let Some(p) = tree.node(u).parent {
            let (parent_rel, child_rel) = two_mut(relations, p, u);
            reduce_pass(ctx, parent_rel, child_rel, "bottom-up", &mut stats)?;
        }
    }
    // Top-down: child ⋉ parent (reverse post-order visits parents first).
    for &u in post.iter().rev() {
        for &c in &tree.node(u).children {
            let (parent_rel, child_rel) = two_mut(relations, u, c);
            reduce_pass(ctx, child_rel, parent_rel, "top-down", &mut stats)?;
        }
    }
    if let Some(s) = trace_span.as_mut() {
        use re_obs::AttrValue;
        s.set_attr("passes", AttrValue::U64(stats.passes));
        s.set_attr("input_rows", AttrValue::U64(stats.input_rows));
        s.set_attr("output_rows", AttrValue::U64(stats.output_rows));
    }
    Ok(stats)
}

/// Bind the atoms of an acyclic query and run the full reducer, returning
/// one dangling-free relation per join-tree node (indexed like the tree's
/// nodes).
pub fn full_reduce(
    query: &JoinProjectQuery,
    tree: &JoinTree,
    db: &Database,
) -> Result<(Vec<Relation>, ReduceStats), JoinError> {
    full_reduce_ctx(&ExecContext::serial(), query, tree, db)
}

/// [`full_reduce`] under an execution context (see
/// [`full_reduce_relations_ctx`]).
pub fn full_reduce_ctx(
    ctx: &ExecContext,
    query: &JoinProjectQuery,
    tree: &JoinTree,
    db: &Database,
) -> Result<(Vec<Relation>, ReduceStats), JoinError> {
    let bound = bind_atoms(query, db)?;
    // Reorder to node order (node i of an unpruned tree is atom i, but a
    // pruned tree may have fewer nodes).
    let mut relations: Vec<Relation> = tree
        .nodes()
        .iter()
        .map(|n| bound[n.atom_index].clone())
        .collect();
    let stats = full_reduce_relations_ctx(ctx, tree, &mut relations)?;
    Ok((relations, stats))
}

/// Full-reduce over the **unpruned** tree, then prune non-projecting
/// subtrees, returning the pruned tree together with its node-aligned
/// reduced relations.
///
/// The order matters: subtrees that own no projection attribute still act
/// as semi-join filters, so dropping them is only answer-preserving on a
/// dangling-free instance. Every enumerator that wants a pruned tree must
/// go through this (or repeat the same dance) — pruning first silently
/// readmits dangling tuples.
pub fn reduce_then_prune(
    query: &JoinProjectQuery,
    tree: JoinTree,
    db: &Database,
) -> Result<(JoinTree, Vec<Relation>, ReduceStats), JoinError> {
    reduce_then_prune_ctx(&ExecContext::serial(), query, tree, db)
}

/// [`reduce_then_prune`] under an execution context (see
/// [`full_reduce_relations_ctx`]).
pub fn reduce_then_prune_ctx(
    ctx: &ExecContext,
    query: &JoinProjectQuery,
    tree: JoinTree,
    db: &Database,
) -> Result<(JoinTree, Vec<Relation>, ReduceStats), JoinError> {
    let (reduced_all, stats) = full_reduce_ctx(ctx, query, &tree, db)?;
    let mut by_atom: Vec<Option<Relation>> = vec![None; query.atoms().len()];
    for (node, rel) in tree.nodes().iter().zip(reduced_all) {
        by_atom[node.atom_index] = Some(rel);
    }
    let pruned = tree.prune_non_projecting();
    let reduced = pruned
        .nodes()
        .iter()
        .map(|n| by_atom[n.atom_index].take().expect("kept node was reduced"))
        .collect();
    Ok((pruned, reduced, stats))
}

/// Sanity check used by tests and debug assertions: a reduced instance is
/// *globally consistent* for a join tree if every parent/child pair agrees
/// on the shared attributes in both directions.
pub fn is_fully_reduced(tree: &JoinTree, relations: &[Relation]) -> Result<bool, JoinError> {
    for (i, node) in tree.nodes().iter().enumerate() {
        if let Some(p) = node.parent {
            if !semi_join_would_keep_all(&relations[i], &relations[p])?
                || !semi_join_would_keep_all(&relations[p], &relations[i])?
            {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn semi_join_would_keep_all(left: &Relation, right: &Relation) -> Result<bool, JoinError> {
    let shared: Vec<Attr> = left
        .attrs()
        .iter()
        .filter(|a| right.attrs().contains(a))
        .cloned()
        .collect();
    if shared.is_empty() {
        // The semi-join keeps everything iff the right side is non-empty or
        // there is nothing to remove on the left.
        return Ok(!right.is_empty() || left.is_empty());
    }
    let left_pos = left.positions(&shared)?;
    let idx = HashIndex::build(right, &shared)?;
    for t in left.iter() {
        let key: Vec<_> = left_pos.iter().map(|&p| t[p]).collect();
        if !idx.contains(&key) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn two_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j);
    if i < j {
        let (a, b) = slice.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = slice.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

/// The set of attributes shared by two relations (helper reused by joins).
pub fn shared_attrs(a: &Relation, b: &Relation) -> Vec<Attr> {
    let bset: BTreeSet<&Attr> = b.attrs().iter().collect();
    a.attrs()
        .iter()
        .filter(|x| bset.contains(*x))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_storage::attr::attrs;

    fn path_db() -> Database {
        // R1(A,B), R2(B,C), R3(C,D) with some dangling tuples.
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "R1",
                attrs(["A", "B"]),
                vec![vec![1, 1], vec![2, 1], vec![3, 9]], // (3,9) dangles
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R2", attrs(["B", "C"]), vec![vec![1, 5], vec![7, 6]]).unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R3", attrs(["C", "D"]), vec![vec![5, 2], vec![5, 3]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn path_query() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("R1", "R1", ["A", "B"])
            .atom("R2", "R2", ["B", "C"])
            .atom("R3", "R3", ["C", "D"])
            .project(["A", "D"])
            .build()
            .unwrap()
    }

    #[test]
    fn semi_join_filters_left() {
        let mut l =
            Relation::with_tuples("L", attrs(["A", "B"]), vec![vec![1, 1], vec![2, 9]]).unwrap();
        let r = Relation::with_tuples("R", attrs(["B", "C"]), vec![vec![1, 4]]).unwrap();
        semi_join(&mut l, &r).unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l.tuple(0), &[1, 1]);
    }

    #[test]
    fn semi_join_disjoint_attrs_keeps_all_when_right_nonempty() {
        let mut l = Relation::with_tuples("L", attrs(["A"]), vec![vec![1], vec![2]]).unwrap();
        let r = Relation::with_tuples("R", attrs(["B"]), vec![vec![9]]).unwrap();
        semi_join(&mut l, &r).unwrap();
        assert_eq!(l.len(), 2);
        let empty = Relation::new("E", attrs(["B"]));
        semi_join(&mut l, &empty).unwrap();
        assert_eq!(l.len(), 0);
    }

    #[test]
    fn full_reducer_removes_dangling_tuples() {
        let q = path_query();
        let tree = JoinTree::build_rooted(&q, 1).unwrap();
        let db = path_db();
        let (reduced, stats) = full_reduce(&q, &tree, &db).unwrap();
        // node order == atom order for unpruned trees
        assert_eq!(reduced[0].len(), 2); // (1,1), (2,1)
        assert_eq!(reduced[1].len(), 1); // (1,5)
        assert_eq!(reduced[2].len(), 2); // (5,2), (5,3)
        assert!(is_fully_reduced(&tree, &reduced).unwrap());
        // 3 nodes, root 1: two bottom-up passes plus two top-down passes,
        // and exactly the dangling (3,9) plus R2's (7,6) were filtered.
        assert_eq!(stats.passes, 4);
        assert_eq!(stats.filtered_rows(), 2);
        assert_eq!(stats.input_rows - 2, stats.output_rows);
    }

    #[test]
    fn full_reducer_handles_empty_join() {
        let q = path_query();
        let tree = JoinTree::build(&q).unwrap();
        let mut db = path_db();
        // Make R3 share no C values with R2.
        db.set_relation(Relation::with_tuples("R3", attrs(["C", "D"]), vec![vec![99, 2]]).unwrap());
        let (reduced, _) = full_reduce(&q, &tree, &db).unwrap();
        assert!(reduced.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn reduction_is_idempotent() {
        let q = path_query();
        let tree = JoinTree::build(&q).unwrap();
        let db = path_db();
        let (reduced, _) = full_reduce(&q, &tree, &db).unwrap();
        let mut again = reduced.clone();
        let stats = full_reduce_relations(&tree, &mut again).unwrap();
        for (a, b) in reduced.iter().zip(&again) {
            assert_eq!(a.len(), b.len());
        }
        // An already-reduced instance loses nothing on the second run.
        assert_eq!(stats.filtered_rows(), 0);
    }

    #[test]
    fn reduce_passes_land_in_an_installed_trace() {
        let q = path_query();
        let tree = JoinTree::build(&q).unwrap();
        let db = path_db();
        let tctx = re_obs::TraceCtx::new("reduce");
        {
            let _g = re_obs::trace::install(&tctx, 0);
            full_reduce(&q, &tree, &db).unwrap();
        }
        let trace = tctx.finish();
        let parent = trace.spans_named("preprocess.reduce").next().unwrap();
        let passes: Vec<_> = trace.spans_named("reduce.pass").collect();
        assert_eq!(passes.len(), 4);
        for p in &passes {
            assert_eq!(p.parent, parent.id);
            assert!(p
                .attrs
                .iter()
                .any(|(k, v)| k == "input_rows" && matches!(v, re_obs::AttrValue::U64(_))));
        }
    }
}
