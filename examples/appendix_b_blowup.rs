//! Why a dedicated algorithm is needed: the Appendix-B lower-bound instance.
//!
//! On the worst-case star instance (ℓ arms, n tuples per arm, all sharing a
//! single join value) the projected output has exactly n answers, but the
//! full join has n^ℓ. Running an existing full-query any-k algorithm with
//! zero weights on the non-projection attributes (Algorithm 6 of the paper)
//! therefore wastes n^{ℓ-1} answers per projected answer, while the
//! projection-aware enumerator emits each answer with near-constant work.
//!
//! Run with: `cargo run --release --example appendix_b_blowup`

use rankedenum::datagen::worst_case_path_instance;
use rankedenum::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arms = 3usize;
    for n in [30usize, 60, 120] {
        let db = worst_case_path_instance(arms, n);
        let mut builder = QueryBuilder::new();
        for i in 1..=arms {
            builder = builder.atom(
                format!("A{i}"),
                format!("R{i}"),
                [format!("x{i}"), "y".into()],
            );
        }
        let query = builder.project(["x1"]).build()?;
        let ranking = SumRanking::value_sum();

        let start = Instant::now();
        let ours: Vec<Tuple> = AcyclicEnumerator::new(&query, &db, ranking.clone())?.collect();
        let ours_time = start.elapsed();

        let start = Instant::now();
        let mut baseline = FullAnyKEngine::new(&query, &db, ranking.clone())?;
        let theirs: Vec<Tuple> = baseline.by_ref().collect();
        let baseline_time = start.elapsed();

        assert_eq!(ours.len(), n);
        assert_eq!(theirs.len(), n);
        println!(
            "n = {n:>4}: projected answers = {n:>6}, full answers walked by the \
             Appendix-B baseline = {:>10}  |  LinDelay {ours_time:>9.2?} vs baseline {baseline_time:>9.2?}",
            baseline.full_answers_enumerated()
        );
    }
    Ok(())
}
