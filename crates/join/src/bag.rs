//! GHD bag materialisation (Theorem 3).
//!
//! For a cyclic query, each bag of a [`re_query::GhdPlan`] is materialised
//! as the join of the atoms assigned to the bag, projected (with
//! de-duplication) onto the bag attributes. The resulting bag relations form
//! an acyclic residual query which the acyclic enumerator then processes.

use crate::bind::bind_atom;
use crate::error::JoinError;
use crate::parallel::{par_hash_join, par_project_distinct, par_semi_join};
use re_exec::ExecContext;
use re_query::{Bag, JoinProjectQuery};
use re_storage::{Database, Relation};

/// Materialise one GHD bag: `π_{bag.attrs}(⋈_{i ∈ bag.atoms} atom_i)`,
/// de-duplicated, named `bag.name`. Serial entry point — see
/// [`materialize_bag_ctx`] for the pooled variant.
pub fn materialize_bag(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
) -> Result<Relation, JoinError> {
    materialize_bag_ctx(query, db, bag, &ExecContext::serial())
}

/// Materialise one GHD bag under an execution context: the semi-join
/// sweeps, the left-deep hash joins and the final distinct-projection all
/// run through the context's (possibly pooled) kernels.
///
/// Only the bag's own atoms are bound — binding clones the base relation
/// per atom, so binding the whole query per bag (as earlier revisions did)
/// multiplied that copy cost by the bag count for nothing.
///
/// Before joining, a round of pairwise semi-joins shrinks the atom relations
/// (a cheap partial reducer); the join itself is a left-deep hash-join plan
/// in the order the atoms are listed in the bag.
pub fn materialize_bag_ctx(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
    ctx: &ExecContext,
) -> Result<Relation, JoinError> {
    let mut rels: Vec<Relation> = bag
        .atoms
        .iter()
        .map(|&i| bind_atom(query, db, i))
        .collect::<Result<_, _>>()?;

    for i in 1..rels.len() {
        let (a, b) = rels.split_at_mut(i);
        par_semi_join(ctx, &mut b[0], &a[i - 1])?;
    }
    for i in (1..rels.len()).rev() {
        let (a, b) = rels.split_at_mut(i);
        par_semi_join(ctx, &mut a[i - 1], &b[0])?;
    }

    let mut iter = rels.into_iter();
    let mut acc = iter.next().expect("bags join at least one atom");
    for next in iter {
        acc = par_hash_join(ctx, &acc, &next, "bag_join")?;
    }
    let mut out = par_project_distinct(ctx, &acc, &bag.attrs)?;
    out.set_name(bag.name.clone());
    Ok(out)
}

/// Materialise every bag of a GHD plan. Under a pooled context each bag is
/// one pool task (they are independent sub-joins), and the intra-bag
/// kernels fan out further on the same pool — the two levels compose
/// because the pool supports nested submission. Results come back in bag
/// order regardless of scheduling.
pub fn materialize_bags(
    query: &JoinProjectQuery,
    db: &Database,
    bags: &[Bag],
    ctx: &ExecContext,
) -> Result<Vec<Relation>, JoinError> {
    if !ctx.is_parallel() {
        return bags
            .iter()
            .map(|bag| materialize_bag_ctx(query, db, bag, ctx))
            .collect();
    }
    ctx.map(bags.len(), |i| {
        materialize_bag_ctx(query, db, &bags[i], ctx)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashjoin::{hash_join, project_distinct};
    use re_query::{GhdPlan, QueryBuilder};
    use re_storage::attr::attrs;

    /// A small directed graph stored as an edge relation.
    fn edge_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["src", "dst"]),
                edges.iter().map(|&(a, b)| vec![a, b]),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn four_cycle_bags_materialise_correct_triples() {
        // Square 1-2-3-4-1 plus a dangling edge.
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (4, 1), (9, 8)]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        assert_eq!(plan.len(), 2);
        let bag0 = materialize_bag(&q, &db, &plan.bags()[0]).unwrap();
        // bag over {a1,a2,a3} covered by R1, R2 and R4: tuples (a1,a2,a3)
        // where a1->a2->a3 is a path and a1 has an incoming edge.
        assert_eq!(bag0.arity(), 3);
        assert!(!bag0.is_empty());
        // The residual join of both bags must produce exactly the square.
        let bag1 = materialize_bag(&q, &db, &plan.bags()[1]).unwrap();
        let joined = hash_join(&bag0, &bag1, "res").unwrap();
        let out = project_distinct(&joined, &attrs(["a1", "a3"])).unwrap();
        let mut rows: Vec<Vec<u64>> = out.iter().map(|t| t.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 3], vec![2, 4], vec![3, 1], vec![4, 2]]);
    }

    #[test]
    fn pooled_bag_materialisation_is_identical_to_serial() {
        let db = edge_db(&[
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (2, 5),
            (5, 4),
            (9, 8),
            (8, 9),
        ]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        let serial: Vec<Relation> = plan
            .bags()
            .iter()
            .map(|b| materialize_bag(&q, &db, b).unwrap())
            .collect();
        for threads in [1, 2, 4] {
            let ctx = ExecContext::with_threads(threads)
                .with_min_par_rows(1)
                .with_morsel_rows(2);
            let pooled = materialize_bags(&q, &db, plan.bags(), &ctx).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (p, s) in pooled.iter().zip(&serial) {
                assert_eq!(p.name(), s.name());
                assert_eq!(p.attrs(), s.attrs());
                let pt: Vec<Vec<u64>> = p.iter().map(|t| t.to_vec()).collect();
                let st: Vec<Vec<u64>> = s.iter().map(|t| t.to_vec()).collect();
                assert_eq!(pt, st, "bag {} diverged at {threads} threads", p.name());
            }
        }
    }

    #[test]
    fn single_bag_plan_is_the_full_join() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 1)]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["x", "y"])
            .atom("R2", "E", ["y", "z"])
            .atom("R3", "E", ["z", "x"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let plan = GhdPlan::single_bag(&q);
        let bag = materialize_bag(&q, &db, &plan.bags()[0]).unwrap();
        // The triangle 1->2->3->1 yields 3 (x,y,z) rotations.
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.arity(), 3);
    }
}
