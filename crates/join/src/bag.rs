//! GHD bag materialisation (Theorem 3).
//!
//! For a cyclic query, each bag of a [`re_query::GhdPlan`] is materialised
//! as the join of the atoms assigned to the bag, projected (with
//! de-duplication) onto the bag attributes. The resulting bag relations form
//! an acyclic residual query which the acyclic enumerator then processes.
//!
//! Two kernels produce the bag, selected by [`BagKernel`]:
//! * [`BagKernel::Wcoj`] (the default) runs the generic-join kernel of
//!   [`crate::wcoj`], whose cost is bounded by the bag's AGM bound instead
//!   of the largest pairwise intermediate;
//! * [`BagKernel::Cascade`] is the retained left-deep hash-join cascade,
//!   ordered by shared-attribute connectivity so a connected join order is
//!   never passed over for an accidental cartesian product.
//!
//! Both kernels emit the *canonical* bag representation — rows
//! lexicographically sorted and distinct over `bag.attrs` — so they are
//! byte-interchangeable, which the `wcoj_differential` suite enforces.

use crate::bind::bind_atom;
use crate::error::JoinError;
use crate::parallel::{par_hash_join, par_project_distinct, par_semi_join};
use crate::wcoj::{wcoj_materialize_reported, WcojReport};
use re_exec::ExecContext;
use re_query::{Bag, JoinProjectQuery};
use re_storage::{Attr, Database, Relation};
use std::collections::BTreeSet;

/// Which kernel materialises a bag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BagKernel {
    /// Attribute-at-a-time generic join (worst-case optimal).
    #[default]
    Wcoj,
    /// Left-deep hash-join cascade in shared-attribute connectivity order.
    Cascade,
}

/// Materialise one GHD bag: `π_{bag.attrs}(⋈_{i ∈ bag.atoms} atom_i)`,
/// de-duplicated, named `bag.name`. Serial entry point — see
/// [`materialize_bag_ctx`] for the pooled variant.
pub fn materialize_bag(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
) -> Result<Relation, JoinError> {
    materialize_bag_ctx(query, db, bag, &ExecContext::serial())
}

/// Materialise one GHD bag under an execution context with the default
/// (generic join) kernel.
pub fn materialize_bag_ctx(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
    ctx: &ExecContext,
) -> Result<Relation, JoinError> {
    materialize_bag_kernel(query, db, bag, ctx, BagKernel::default())
}

/// Per-operator report of one bag materialisation: what EXPLAIN ANALYZE
/// prints next to the bag's AGM estimate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BagBuildInfo {
    /// The bag's name.
    pub name: String,
    /// Atoms joined into the bag.
    pub atoms: u64,
    /// The attribute order the kernel bound (generic join's global order;
    /// the cascade reports the bag's output attributes).
    pub attr_order: Vec<Attr>,
    /// Rows actually materialised (distinct rows over the bag attributes).
    pub rows: u64,
    /// Trie intersection steps of the generic-join walk (zero for the
    /// cascade kernel).
    pub intersections: u64,
}

/// Materialise one GHD bag with an explicit kernel choice. The semi-join
/// sweep and all inner kernels run through the context's (possibly pooled)
/// primitives; output is canonical (sorted, distinct) either way.
///
/// Only the bag's own atoms are bound — binding clones the base relation
/// per atom, so binding the whole query per bag (as earlier revisions did)
/// multiplied that copy cost by the bag count for nothing.
pub fn materialize_bag_kernel(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
    ctx: &ExecContext,
    kernel: BagKernel,
) -> Result<Relation, JoinError> {
    materialize_bag_reported(query, db, bag, ctx, kernel).map(|(rel, _)| rel)
}

/// [`materialize_bag_kernel`] returning the per-operator [`BagBuildInfo`].
/// When a request trace is installed on the calling thread the build is
/// recorded as a `bag.materialize` span carrying the same counters and
/// stamped with the pool worker lane that ran it — under the parallel
/// per-bag fan-out of [`materialize_bags_with`] this is what makes the
/// fan-out visible in the exported trace.
pub fn materialize_bag_reported(
    query: &JoinProjectQuery,
    db: &Database,
    bag: &Bag,
    ctx: &ExecContext,
    kernel: BagKernel,
) -> Result<(Relation, BagBuildInfo), JoinError> {
    // Bag boundary: the cancellation poll point of the per-bag fan-out,
    // and the `bags.materialize` failpoint.
    ctx.check_cancelled()?;
    re_fault::fire("bags.materialize")?;
    let mut span = re_obs::trace::child_span("bag.materialize");
    let mut rels: Vec<Relation> = bag
        .atoms
        .iter()
        .map(|&i| bind_atom(query, db, i))
        .collect::<Result<_, _>>()?;

    semi_join_sweep(ctx, &mut rels)?;

    let (out, wcoj_report) = match kernel {
        BagKernel::Wcoj => {
            let (out, report) = wcoj_materialize_reported(bag, &rels, ctx)?;
            (out, report)
        }
        BagKernel::Cascade => {
            let order = connectivity_order(&rels);
            let mut iter = order.into_iter();
            let mut acc = rels[iter.next().expect("bags join at least one atom")].clone();
            for next in iter {
                acc = par_hash_join(ctx, &acc, &rels[next], "bag_join")?;
            }
            let mut out = par_project_distinct(ctx, &acc, &bag.attrs)?;
            // Canonical representation: lex-sort the distinct rows so the
            // cascade is byte-interchangeable with the generic-join kernel.
            let positions: Vec<usize> = (0..out.arity()).collect();
            out.sort_by_positions(&positions);
            out.set_name(bag.name.clone());
            (
                out,
                WcojReport {
                    attr_order: bag.attrs.clone(),
                    intersections: 0,
                },
            )
        }
    };
    let info = BagBuildInfo {
        name: bag.name.clone(),
        atoms: bag.atoms.len() as u64,
        attr_order: wcoj_report.attr_order,
        rows: out.len() as u64,
        intersections: wcoj_report.intersections,
    };
    if let Some(s) = span.as_mut() {
        use re_obs::AttrValue;
        s.set_attr("bag", AttrValue::Str(info.name.clone()));
        s.set_attr("atoms", AttrValue::U64(info.atoms));
        s.set_attr("rows", AttrValue::U64(info.rows));
        s.set_attr("intersections", AttrValue::U64(info.intersections));
        if let Some(worker) = re_exec::current_worker() {
            s.set_lane(worker as u32);
        }
    }
    Ok((out, info))
}

/// Reduce every atom against *all* attribute-sharing partners (forward then
/// backward pass), skipping attribute-disjoint pairs outright. The earlier
/// sweep only paired list-adjacent atoms, which on the 6-cycle middle bags
/// (adjacent atoms disjoint) was a pure no-op doing wasted passes.
fn semi_join_sweep(ctx: &ExecContext, rels: &mut [Relation]) -> Result<(), JoinError> {
    let n = rels.len();
    let shares = |a: &Relation, b: &Relation| {
        let av: BTreeSet<_> = a.attrs().iter().collect();
        b.attrs().iter().any(|x| av.contains(x))
    };
    for i in 1..n {
        for j in 0..i {
            if shares(&rels[i], &rels[j]) {
                ctx.check_cancelled()?;
                let (a, b) = rels.split_at_mut(i);
                par_semi_join(ctx, &mut b[0], &a[j])?;
            }
        }
    }
    for i in (0..n.saturating_sub(1)).rev() {
        for j in i + 1..n {
            if shares(&rels[i], &rels[j]) {
                ctx.check_cancelled()?;
                let (a, b) = rels.split_at_mut(j);
                par_semi_join(ctx, &mut a[i], &b[0])?;
            }
        }
    }
    Ok(())
}

/// A join order that follows shared attributes greedily: start from the
/// first atom, repeatedly append the lowest-indexed unused atom sharing an
/// attribute with what is already joined, and only fall back to a
/// disconnected atom (a genuine cartesian step) when no connected one is
/// left. Deterministic by construction.
fn connectivity_order(rels: &[Relation]) -> Vec<usize> {
    let n = rels.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order = vec![0usize];
    let mut used = vec![false; n];
    used[0] = true;
    let mut joined: BTreeSet<_> = rels[0].attrs().iter().cloned().collect();
    while order.len() < n {
        let next = (0..n)
            .find(|&i| !used[i] && rels[i].attrs().iter().any(|a| joined.contains(a)))
            .unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("some atom unused"));
        used[next] = true;
        joined.extend(rels[next].attrs().iter().cloned());
        order.push(next);
    }
    order
}

/// Materialise every bag of a GHD plan with the default kernel.
pub fn materialize_bags(
    query: &JoinProjectQuery,
    db: &Database,
    bags: &[Bag],
    ctx: &ExecContext,
) -> Result<Vec<Relation>, JoinError> {
    materialize_bags_with(query, db, bags, ctx, BagKernel::default())
}

/// Materialise every bag of a GHD plan with an explicit kernel. Under a
/// pooled context each bag is one pool task (they are independent
/// sub-joins), and the intra-bag kernels fan out further on the same pool —
/// the two levels compose because the pool supports nested submission.
/// Results come back in bag order regardless of scheduling.
pub fn materialize_bags_with(
    query: &JoinProjectQuery,
    db: &Database,
    bags: &[Bag],
    ctx: &ExecContext,
    kernel: BagKernel,
) -> Result<Vec<Relation>, JoinError> {
    materialize_bags_reported(query, db, bags, ctx, kernel)
        .map(|pairs| pairs.into_iter().map(|(rel, _)| rel).collect())
}

/// [`materialize_bags_with`] returning each bag's [`BagBuildInfo`]
/// alongside its relation. The fan-out behaviour (one pool task per bag
/// under a parallel context) is identical.
pub fn materialize_bags_reported(
    query: &JoinProjectQuery,
    db: &Database,
    bags: &[Bag],
    ctx: &ExecContext,
    kernel: BagKernel,
) -> Result<Vec<(Relation, BagBuildInfo)>, JoinError> {
    let _span = re_obs::Span::enter("preprocess.bags");
    let mut trace_span = re_obs::trace::child_span("preprocess.bags");
    if let Some(s) = trace_span.as_mut() {
        s.set_attr("bags", re_obs::AttrValue::U64(bags.len() as u64));
    }
    if !ctx.is_parallel() {
        return bags
            .iter()
            .map(|bag| materialize_bag_reported(query, db, bag, ctx, kernel))
            .collect();
    }
    ctx.map(bags.len(), |i| {
        materialize_bag_reported(query, db, &bags[i], ctx, kernel)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashjoin::{hash_join, project_distinct};
    use re_query::{GhdPlan, QueryBuilder};
    use re_storage::attr::attrs;

    /// A small directed graph stored as an edge relation.
    fn edge_db(edges: &[(u64, u64)]) -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["src", "dst"]),
                edges.iter().map(|&(a, b)| vec![a, b]),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn four_cycle_bags_materialise_correct_triples() {
        // Square 1-2-3-4-1 plus a dangling edge.
        let db = edge_db(&[(1, 2), (2, 3), (3, 4), (4, 1), (9, 8)]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        assert_eq!(plan.len(), 2);
        let bag0 = materialize_bag(&q, &db, &plan.bags()[0]).unwrap();
        // bag over {a1,a2,a3} covered by R1, R2 and R4: tuples (a1,a2,a3)
        // where a1->a2->a3 is a path and a1 has an incoming edge.
        assert_eq!(bag0.arity(), 3);
        assert!(!bag0.is_empty());
        // The residual join of both bags must produce exactly the square.
        let bag1 = materialize_bag(&q, &db, &plan.bags()[1]).unwrap();
        let joined = hash_join(&bag0, &bag1, "res").unwrap();
        let out = project_distinct(&joined, &attrs(["a1", "a3"])).unwrap();
        let mut rows: Vec<Vec<u64>> = out.iter().map(|t| t.to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![vec![1, 3], vec![2, 4], vec![3, 1], vec![4, 2]]);
    }

    #[test]
    fn pooled_bag_materialisation_is_identical_to_serial() {
        let db = edge_db(&[
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (2, 5),
            (5, 4),
            (9, 8),
            (8, 9),
        ]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        let serial: Vec<Relation> = plan
            .bags()
            .iter()
            .map(|b| materialize_bag(&q, &db, b).unwrap())
            .collect();
        for threads in [1, 2, 4] {
            let ctx = ExecContext::with_threads(threads)
                .with_min_par_rows(1)
                .with_morsel_rows(2);
            let pooled = materialize_bags(&q, &db, plan.bags(), &ctx).unwrap();
            assert_eq!(pooled.len(), serial.len());
            for (p, s) in pooled.iter().zip(&serial) {
                assert_eq!(p.name(), s.name());
                assert_eq!(p.attrs(), s.attrs());
                let pt: Vec<Vec<u64>> = p.iter().map(|t| t.to_vec()).collect();
                let st: Vec<Vec<u64>> = s.iter().map(|t| t.to_vec()).collect();
                assert_eq!(pt, st, "bag {} diverged at {threads} threads", p.name());
            }
        }
    }

    #[test]
    fn single_bag_plan_is_the_full_join() {
        let db = edge_db(&[(1, 2), (2, 3), (3, 1)]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["x", "y"])
            .atom("R2", "E", ["y", "z"])
            .atom("R3", "E", ["z", "x"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let plan = GhdPlan::single_bag(&q);
        let bag = materialize_bag(&q, &db, &plan.bags()[0]).unwrap();
        // The triangle 1->2->3->1 yields 3 (x,y,z) rotations.
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.arity(), 3);
    }

    #[test]
    fn kernels_agree_byte_for_byte() {
        let db = edge_db(&[
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (2, 5),
            (5, 4),
            (1, 4),
            (4, 3),
            (9, 8),
        ]);
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        for plan in [GhdPlan::for_cycle(&q).unwrap(), GhdPlan::single_bag(&q)] {
            for bag in plan.bags() {
                let ctx = ExecContext::serial();
                let wcoj = materialize_bag_kernel(&q, &db, bag, &ctx, BagKernel::Wcoj).unwrap();
                let casc = materialize_bag_kernel(&q, &db, bag, &ctx, BagKernel::Cascade).unwrap();
                assert_eq!(wcoj.attrs(), casc.attrs(), "{}", bag.name);
                let w: Vec<Vec<u64>> = wcoj.iter().map(|t| t.to_vec()).collect();
                let c: Vec<Vec<u64>> = casc.iter().map(|t| t.to_vec()).collect();
                assert_eq!(w, c, "bag {} kernels diverged", bag.name);
                // Canonical form: sorted and distinct.
                let mut sorted = w.clone();
                sorted.sort();
                sorted.dedup();
                assert_eq!(w, sorted, "bag {} not canonical", bag.name);
            }
        }
    }

    #[test]
    fn connectivity_order_defers_disconnected_atoms() {
        // Atoms listed so that 0 and 1 are attribute-disjoint: the old
        // ascending order joined them first as a cartesian product.
        let a = Relation::with_tuples("A", attrs(["x", "y"]), vec![vec![1u64, 2]]).unwrap();
        let b = Relation::with_tuples("B", attrs(["z", "w"]), vec![vec![3u64, 4]]).unwrap();
        let c = Relation::with_tuples("C", attrs(["y", "z"]), vec![vec![2u64, 3]]).unwrap();
        let order = connectivity_order(&[a, b, c]);
        assert_eq!(order, vec![0, 2, 1]);
    }
}
