//! Weight assignments `w : dom(A) → ℝ` (Example 3 of the paper).

use crate::weight::Weight;
use re_storage::{Attr, DegreeIndex, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Behaviour for attributes/values without an explicit weight table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultWeight {
    /// Use the (dictionary-encoded) value itself as its weight. This is the
    /// natural choice for synthetic integer domains.
    ValueAsWeight,
    /// Weight zero. Used by the Appendix-B baseline which sets the weight of
    /// every non-projection attribute to zero.
    Zero,
}

/// A weight assignment: per-attribute weight tables with a configurable
/// default for values (or attributes) without an entry.
///
/// Weight tables are shared behind `Arc` so that several query variables
/// bound to the same entity class (e.g. `a1` and `a2` both ranging over
/// authors) can share one table without copying it.
#[derive(Clone, Debug)]
pub struct WeightAssignment {
    tables: HashMap<Attr, Arc<HashMap<Value, Weight>>>,
    default: DefaultWeight,
    /// Per-attribute overrides of the global default, consulted before
    /// `default` when an attribute has no table entry for a value.
    attr_defaults: HashMap<Attr, DefaultWeight>,
}

impl WeightAssignment {
    /// Every value weighs its own numeric value.
    pub fn value_as_weight() -> Self {
        WeightAssignment {
            tables: HashMap::new(),
            default: DefaultWeight::ValueAsWeight,
            attr_defaults: HashMap::new(),
        }
    }

    /// Every value weighs zero unless a table overrides it.
    pub fn zero() -> Self {
        WeightAssignment {
            tables: HashMap::new(),
            default: DefaultWeight::Zero,
            attr_defaults: HashMap::new(),
        }
    }

    /// Change the default behaviour.
    pub fn with_default(mut self, default: DefaultWeight) -> Self {
        self.default = default;
        self
    }

    /// Override the default behaviour for one attribute only. Used, e.g., to
    /// rank by a *subset* of the projection attributes
    /// (`ORDER BY a1 + a2` while also selecting `a3`): keep the global
    /// default for `a1`, `a2` and set the others to [`DefaultWeight::Zero`].
    pub fn with_attr_default(mut self, attr: impl Into<Attr>, default: DefaultWeight) -> Self {
        self.attr_defaults.insert(attr.into(), default);
        self
    }

    /// Attach an explicit weight table to an attribute.
    pub fn with_table(mut self, attr: impl Into<Attr>, table: HashMap<Value, Weight>) -> Self {
        self.tables.insert(attr.into(), Arc::new(table));
        self
    }

    /// Attach an already shared weight table to an attribute (used when
    /// several query variables range over the same entities).
    pub fn with_shared_table(
        mut self,
        attr: impl Into<Attr>,
        table: Arc<HashMap<Value, Weight>>,
    ) -> Self {
        self.tables.insert(attr.into(), table);
        self
    }

    /// Attach the *logarithmic* weights of the paper's evaluation
    /// (Section 6.1.1): `w(v) = log2(1 + deg(v))` where `deg` comes from a
    /// degree index over the relation the entity lives in.
    pub fn with_log_degree_table(self, attr: impl Into<Attr>, degrees: &DegreeIndex) -> Self {
        let table = Self::log_degree_table(degrees.iter());
        self.with_table(attr, table)
    }

    /// Build a log-degree weight table from explicit `(value, degree)` pairs.
    pub fn log_degree_table(
        pairs: impl IntoIterator<Item = (Value, u32)>,
    ) -> HashMap<Value, Weight> {
        pairs
            .into_iter()
            .map(|(v, d)| (v, Weight::new((1.0 + d as f64).log2())))
            .collect()
    }

    /// The weight of a value under an attribute.
    pub fn weight_of(&self, attr: &Attr, value: Value) -> Weight {
        if let Some(table) = self.tables.get(attr) {
            if let Some(w) = table.get(&value) {
                return *w;
            }
        }
        let default = self
            .attr_defaults
            .get(attr)
            .copied()
            .unwrap_or(self.default);
        match default {
            DefaultWeight::ValueAsWeight => Weight::new(value as f64),
            DefaultWeight::Zero => Weight::ZERO,
        }
    }

    /// Whether the attribute has an explicit table.
    pub fn has_table(&self, attr: &Attr) -> bool {
        self.tables.contains_key(attr)
    }

    /// A per-attribute resolver: the attribute's table and effective
    /// default, resolved **once**. [`WeightAssignment::weight_of`] pays two
    /// hash lookups per call (attribute, then value); inside a sort or a
    /// bulk decorate pass that doubles the hash traffic for no reason —
    /// resolve the attribute up front and each value costs at most one
    /// lookup.
    pub fn resolver(&self, attr: &Attr) -> AttrWeights<'_> {
        AttrWeights {
            table: self.tables.get(attr).map(Arc::as_ref),
            default: self
                .attr_defaults
                .get(attr)
                .copied()
                .unwrap_or(self.default),
        }
    }

    /// Bulk lookup: the weights of `values` under `attr`, in order — the
    /// decorate step of decorate-sort-undecorate.
    pub fn weights_of(&self, attr: &Attr, values: &[Value]) -> Vec<Weight> {
        let r = self.resolver(attr);
        values.iter().map(|&v| r.weight_of(v)).collect()
    }
}

/// A [`WeightAssignment`] restricted to one attribute (see
/// [`WeightAssignment::resolver`]).
#[derive(Clone, Copy, Debug)]
pub struct AttrWeights<'a> {
    table: Option<&'a HashMap<Value, Weight>>,
    default: DefaultWeight,
}

impl AttrWeights<'_> {
    /// The weight of one value — a single hash lookup (none when the
    /// attribute has no table).
    #[inline]
    pub fn weight_of(&self, value: Value) -> Weight {
        if let Some(table) = self.table {
            if let Some(w) = table.get(&value) {
                return *w;
            }
        }
        match self.default {
            DefaultWeight::ValueAsWeight => Weight::new(value as f64),
            DefaultWeight::Zero => Weight::ZERO,
        }
    }
}

impl Default for WeightAssignment {
    fn default() -> Self {
        WeightAssignment::value_as_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_as_weight_default() {
        let w = WeightAssignment::value_as_weight();
        assert_eq!(w.weight_of(&Attr::new("a"), 7), Weight::new(7.0));
    }

    #[test]
    fn zero_default() {
        let w = WeightAssignment::zero();
        assert_eq!(w.weight_of(&Attr::new("a"), 7), Weight::ZERO);
    }

    #[test]
    fn explicit_table_overrides_default() {
        let mut table = HashMap::new();
        table.insert(5u64, Weight::new(0.25));
        let w = WeightAssignment::value_as_weight().with_table("a", table);
        assert_eq!(w.weight_of(&Attr::new("a"), 5), Weight::new(0.25));
        // absent value falls back to the default
        assert_eq!(w.weight_of(&Attr::new("a"), 6), Weight::new(6.0));
        // other attributes are unaffected
        assert_eq!(w.weight_of(&Attr::new("b"), 5), Weight::new(5.0));
        assert!(w.has_table(&Attr::new("a")));
        assert!(!w.has_table(&Attr::new("b")));
    }

    #[test]
    fn shared_table_between_variables() {
        let table: Arc<HashMap<Value, Weight>> =
            Arc::new([(1u64, Weight::new(10.0))].into_iter().collect());
        let w = WeightAssignment::zero()
            .with_shared_table("a1", Arc::clone(&table))
            .with_shared_table("a2", table);
        assert_eq!(w.weight_of(&Attr::new("a1"), 1), Weight::new(10.0));
        assert_eq!(w.weight_of(&Attr::new("a2"), 1), Weight::new(10.0));
    }

    #[test]
    fn log_degree_table_formula() {
        let table = WeightAssignment::log_degree_table([(3u64, 1u32), (4, 3)]);
        assert_eq!(table[&3], Weight::new(1.0)); // log2(2)
        assert_eq!(table[&4], Weight::new(2.0)); // log2(4)
    }

    #[test]
    fn per_attribute_default_overrides_global_default() {
        let w =
            WeightAssignment::value_as_weight().with_attr_default("ignored", DefaultWeight::Zero);
        assert_eq!(w.weight_of(&Attr::new("ranked"), 7), Weight::new(7.0));
        assert_eq!(w.weight_of(&Attr::new("ignored"), 7), Weight::ZERO);
        // An explicit table entry still wins over the per-attribute default.
        let mut table = HashMap::new();
        table.insert(3u64, Weight::new(0.5));
        let w = w.with_table("ignored", table);
        assert_eq!(w.weight_of(&Attr::new("ignored"), 3), Weight::new(0.5));
        assert_eq!(w.weight_of(&Attr::new("ignored"), 4), Weight::ZERO);
    }

    #[test]
    fn resolver_agrees_with_weight_of_everywhere() {
        let mut table = HashMap::new();
        table.insert(5u64, Weight::new(0.25));
        let w = WeightAssignment::value_as_weight()
            .with_table("a", table)
            .with_attr_default("z", DefaultWeight::Zero);
        for attr in ["a", "b", "z"] {
            let attr = Attr::new(attr);
            let r = w.resolver(&attr);
            for v in [0u64, 5, 6, 42] {
                assert_eq!(r.weight_of(v), w.weight_of(&attr, v), "{attr} {v}");
            }
        }
        assert_eq!(
            w.weights_of(&Attr::new("a"), &[5, 6]),
            vec![Weight::new(0.25), Weight::new(6.0)]
        );
    }

    #[test]
    fn log_degree_from_degree_index() {
        use re_storage::{attr::attrs, Relation};
        let rel = Relation::with_tuples(
            "AP",
            attrs(["a", "p"]),
            vec![vec![1, 10], vec![1, 11], vec![1, 12], vec![2, 10]],
        )
        .unwrap();
        let deg = DegreeIndex::build(&rel, &Attr::new("a")).unwrap();
        let w = WeightAssignment::zero().with_log_degree_table("a", &deg);
        assert_eq!(w.weight_of(&Attr::new("a"), 1), Weight::new(2.0)); // deg 3 → log2(4)
        assert_eq!(w.weight_of(&Attr::new("a"), 2), Weight::new(1.0)); // deg 1 → log2(2)
        assert_eq!(w.weight_of(&Attr::new("a"), 99), Weight::ZERO);
    }
}
