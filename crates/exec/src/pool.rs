//! A work-stealing worker pool over `std` threads.
//!
//! The pool is the machinery behind morsel-driven preprocessing: callers
//! split a relational kernel into independent index tasks (one per morsel,
//! partition or bag), submit them with [`WorkerPool::run_indexed`], and the
//! calling thread *helps* execute tasks until the batch completes. Tasks are
//! distributed round-robin across per-worker deques; an idle worker first
//! drains its own deque (LIFO, cache-warm) and then steals from its siblings
//! (FIFO, oldest task first). Nested submissions are legal — a task may
//! itself call `run_indexed`, as the per-bag materialisation tasks do for
//! their intra-bag kernels — because every waiting thread keeps executing
//! pending tasks instead of blocking.
//!
//! Scheduling is intentionally *not* part of any correctness contract: the
//! kernels built on top merge their per-task results by task index, so the
//! output is identical no matter which thread ran which task.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An erased task. Tasks created by [`WorkerPool::run_indexed`] wrap the
/// caller's closure in a panic guard and a completion count, so executing
/// one never unwinds into the worker loop.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Monotone counters describing the work a pool has executed. `Copy`, so
/// snapshots can be diffed for per-phase accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed to completion (by workers and helping callers).
    pub tasks_executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub tasks_stolen: u64,
    /// Wall-clock time spent inside task bodies, in microseconds, summed
    /// over all threads (> elapsed time when the pool runs in parallel).
    /// Exclusive per task — a task helping with nested tasks does not
    /// count their time again — though it still includes the brief
    /// (≤ 1 ms) helping-wait slices of a task blocked on a nested batch.
    pub busy_micros: u64,
}

impl PoolStats {
    /// Component-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn diff(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            busy_micros: self.busy_micros.saturating_sub(earlier.busy_micros),
        }
    }
}

/// Per-worker slice of [`PoolStats`]: one entry per pool worker, plus a
/// final entry for caller threads helping a batch to completion. Skew
/// across entries is the signal — a pool where one worker carries most of
/// the busy time has a partitioning problem the aggregate hides.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Tasks this worker executed to completion.
    pub tasks_executed: u64,
    /// Tasks this worker took from another worker's deque.
    pub tasks_stolen: u64,
    /// Wall-clock time this worker spent inside task bodies, in
    /// microseconds (exclusive per task, as in [`PoolStats`]).
    pub busy_micros: u64,
}

/// Per-worker atomic counters (one set per worker plus the caller slot).
#[derive(Default)]
struct WorkerCounters {
    tasks_executed: AtomicU64,
    tasks_stolen: AtomicU64,
    busy_nanos: AtomicU64,
}

thread_local! {
    /// The pool worker index of this thread (`None` on non-pool threads,
    /// including callers helping a batch).
    static WORKER: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The pool worker index of the current thread, if it is a pool worker.
/// Trace consumers use this to stamp spans with the lane that ran them.
pub fn current_worker() -> Option<usize> {
    WORKER.with(|w| w.get())
}

/// State shared between the pool handle, its workers and helping callers.
struct Shared {
    /// One deque per worker; external submissions round-robin over them.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Queued-but-not-yet-popped task count. Incremented *before* the task
    /// enters its deque, decremented on pop: a parked worker re-checks it
    /// under `idle` before waiting, which (with `push` notifying under the
    /// same mutex) makes the park/notify handoff race-free — no wakeup can
    /// be lost, so the workers need no poll interval.
    pending: AtomicUsize,
    /// Parking lot for idle workers; `idle_cv` fires on push and shutdown.
    idle: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    next_queue: AtomicUsize,
    tasks_executed: AtomicU64,
    tasks_stolen: AtomicU64,
    busy_nanos: AtomicU64,
    /// One counter set per worker, plus a trailing slot aggregating every
    /// helping caller thread.
    per_worker: Vec<WorkerCounters>,
}

impl Shared {
    fn push(&self, task: Task) {
        // Increment strictly before the task becomes poppable, so `pending`
        // can never underflow and a worker that observes `pending == 0`
        // under the idle lock is guaranteed to be woken by the notify below.
        self.pending.fetch_add(1, Ordering::SeqCst);
        let q = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[q]
            .lock()
            .expect("queue poisoned")
            .push_back(task);
        let _parked = self.idle.lock().expect("idle lock poisoned");
        self.idle_cv.notify_one();
    }

    /// Pop a task — the home deque newest-first (cache-warm LIFO), then
    /// steal from siblings oldest-first (FIFO, so a thief picks up the
    /// coarsest waiting work); `None` while every deque is empty. The
    /// second tuple field reports whether the pop was a steal.
    fn find_task(&self, home: Option<usize>) -> Option<(Task, bool)> {
        let n = self.queues.len();
        if let Some(h) = home {
            if let Some(t) = self.queues[h].lock().expect("queue poisoned").pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some((t, false));
            }
        }
        let start = home.unwrap_or(0);
        for off in 0..n {
            let q = (start + off) % n;
            if Some(q) == home {
                continue;
            }
            if let Some(t) = self.queues[q].lock().expect("queue poisoned").pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some((t, home.is_some()));
            }
        }
        None
    }

    fn execute(&self, task: Task, stolen: bool) {
        // Attribute to the executing worker's counter slot; helping
        // callers (not pool threads) share the trailing slot.
        let slot = &self.per_worker[current_worker().unwrap_or(self.queues.len())];
        // Busy time is *exclusive* per task: a task that helps with nested
        // tasks while it waits (the bag → morsel pattern) must not count
        // their wall time again — each nested `execute` reports its own
        // wall time into the thread-local accumulator, and we subtract it.
        NESTED_NANOS.with(|cell| {
            let saved = cell.replace(0);
            let start = Instant::now();
            task();
            let wall = start.elapsed().as_nanos() as u64;
            let inner = cell.get();
            let exclusive = wall.saturating_sub(inner);
            self.busy_nanos.fetch_add(exclusive, Ordering::Relaxed);
            slot.busy_nanos.fetch_add(exclusive, Ordering::Relaxed);
            cell.set(saved + wall);
        });
        self.tasks_executed.fetch_add(1, Ordering::Relaxed);
        slot.tasks_executed.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.tasks_stolen.fetch_add(1, Ordering::Relaxed);
            slot.tasks_stolen.fetch_add(1, Ordering::Relaxed);
        }
    }
}

thread_local! {
    /// Wall time of nested `execute` calls since the enclosing `execute`
    /// started on this thread (see [`Shared::execute`]).
    static NESTED_NANOS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Completion state of one `run_indexed` batch.
struct Job {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

/// A fixed-size work-stealing pool of `std` worker threads.
///
/// ```
/// use re_exec::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.run_indexed(100, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 99 * 100 / 2);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
            tasks_executed: AtomicU64::new(0),
            tasks_stolen: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            per_worker: (0..=threads).map(|_| WorkerCounters::default()).collect(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("re-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool { shared, workers })
    }

    /// A pool sized to the machine (`available_parallelism`, min 1).
    pub fn machine_sized() -> Arc<WorkerPool> {
        WorkerPool::new(default_thread_count())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Tasks queued but not yet picked up by any thread. A cheap load
    /// signal: admission control sheds new work when this backs up.
    pub fn queued_tasks(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Current counter totals.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_executed: self.shared.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.shared.tasks_stolen.load(Ordering::Relaxed),
            busy_micros: self.shared.busy_nanos.load(Ordering::Relaxed) / 1_000,
        }
    }

    /// Per-worker counter totals: one entry per worker thread, plus a
    /// final entry aggregating caller threads that helped batches to
    /// completion. Entries sum to [`WorkerPool::stats`] (up to the
    /// nanos→micros rounding done per slot).
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        self.shared
            .per_worker
            .iter()
            .map(|c| WorkerStat {
                tasks_executed: c.tasks_executed.load(Ordering::Relaxed),
                tasks_stolen: c.tasks_stolen.load(Ordering::Relaxed),
                busy_micros: c.busy_nanos.load(Ordering::Relaxed) / 1_000,
            })
            .collect()
    }

    /// Execute `f(0), f(1), ..., f(n - 1)` on the pool and block until all
    /// calls completed. The caller participates: it executes queued tasks
    /// (of *any* batch — which is what makes nested calls deadlock-free)
    /// while it waits. Panics if any task panicked, after the whole batch
    /// has settled.
    ///
    /// `f` may borrow from the caller's stack: the borrow is erased to
    /// `'static` to cross into the long-lived workers, which is sound
    /// because this function does not return until every task has finished
    /// running (the completion count is decremented strictly after the
    /// closure call returns or unwinds).
    pub fn run_indexed<'env, F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync + 'env,
    {
        if n == 0 {
            return;
        }
        let job = Arc::new(Job {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the only thing erased is the lifetime; the closure is
        // dropped (tasks are FnOnce boxes consumed on execution) and its
        // last use happens before `remaining` reaches 0, and we block on
        // exactly that condition below before `f` goes out of scope.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_ref) };
        for i in 0..n {
            let job = Arc::clone(&job);
            self.shared.push(Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Failpoint at the task seam. A task body has no error
                    // channel, so an armed `error` action escalates to the
                    // same panic path the `panic` action takes; both settle
                    // the batch and surface as the deferred batch panic.
                    if re_fault::fire("pool.task.start").is_err() {
                        panic!("injected fault at failpoint `pool.task.start`");
                    }
                    f_static(i);
                }));
                if outcome.is_err() {
                    job.panicked.store(true, Ordering::SeqCst);
                }
                let mut remaining = job.remaining.lock().expect("job state poisoned");
                *remaining -= 1;
                if *remaining == 0 {
                    job.done.notify_all();
                }
            }));
        }
        // Help until the batch completes; when no task is runnable the
        // remaining ones are in flight on other threads — wait briefly (a
        // timeout, so a task pushed between the check and the wait cannot
        // strand us).
        loop {
            if *job.remaining.lock().expect("job state poisoned") == 0 {
                break;
            }
            if let Some((task, stolen)) = self.shared.find_task(None) {
                self.shared.execute(task, stolen);
            } else {
                let guard = job.remaining.lock().expect("job state poisoned");
                if *guard > 0 {
                    let _ = job
                        .done
                        .wait_timeout(guard, Duration::from_millis(1))
                        .expect("job state poisoned");
                }
            }
        }
        if job.panicked.load(Ordering::SeqCst) {
            panic!("a re_exec pool task panicked");
        }
    }

    /// Like [`WorkerPool::run_indexed`] but collecting one result per index,
    /// in index order.
    pub fn map_indexed<'env, T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + 'env,
        F: Fn(usize) -> T + Sync + 'env,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.run_indexed(n, |i| {
            *slots[i].lock().expect("result slot poisoned") = Some(f(i));
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("task completed without a result")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Notify under the idle lock: a worker between its shutdown check
        // and its wait would otherwise miss this and sleep forever.
        let parked = self.shared.idle.lock().expect("idle lock poisoned");
        self.shared.idle_cv.notify_all();
        drop(parked);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    WORKER.with(|w| w.set(Some(home)));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some((task, stolen)) = shared.find_task(Some(home)) {
            shared.execute(task, stolen);
        } else {
            // Park until work or shutdown arrives. The wait is unbounded
            // and race-free: `pending` is re-checked under the idle lock,
            // and both `push` and shutdown notify while holding it — so a
            // push after our empty `find_task` either flips `pending`
            // before our check or blocks on the lock until we wait, and
            // its notify lands. Idle workers therefore cost zero CPU.
            let guard = shared.idle.lock().expect("idle lock poisoned");
            if shared.shutdown.load(Ordering::SeqCst) || shared.pending.load(Ordering::SeqCst) > 0 {
                continue;
            }
            let _unused = shared.idle_cv.wait(guard).expect("idle lock poisoned");
        }
    }
}

/// The machine's available parallelism (min 1).
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        let pool = WorkerPool::new(3);
        let out = pool.map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_submissions_complete() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        pool.run_indexed(8, |_| {
            // A task that itself fans out, as the per-bag tasks do.
            pool.run_indexed(8, |j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.into_inner(), 8 * 36);
    }

    #[test]
    fn counters_tick() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(32, |_| {
            std::hint::black_box(0u64);
        });
        let stats = pool.stats();
        assert_eq!(stats.tasks_executed, 32);
        assert!(stats.tasks_stolen <= stats.tasks_executed);
        let again = pool.stats();
        assert_eq!(again.diff(&stats), PoolStats::default());
    }

    #[test]
    fn per_worker_stats_sum_to_the_aggregate() {
        let pool = WorkerPool::new(3);
        pool.run_indexed(64, |_| {
            std::hint::black_box(0u64);
        });
        let total = pool.stats();
        let per = pool.worker_stats();
        assert_eq!(per.len(), 4, "3 workers + the caller slot");
        assert_eq!(
            per.iter().map(|w| w.tasks_executed).sum::<u64>(),
            total.tasks_executed
        );
        assert_eq!(
            per.iter().map(|w| w.tasks_stolen).sum::<u64>(),
            total.tasks_stolen
        );
    }

    #[test]
    fn workers_know_their_index() {
        let pool = WorkerPool::new(2);
        assert_eq!(current_worker(), None, "callers are not workers");
        let seen: Vec<Option<usize>> = pool.map_indexed(16, |_| {
            // Let siblings steal so multiple workers participate.
            std::thread::sleep(Duration::from_micros(200));
            current_worker()
        });
        for w in seen.into_iter().flatten() {
            assert!(w < 2);
        }
    }

    #[test]
    fn borrowed_state_is_visible_and_complete() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.run_indexed(10, |i| {
            let chunk: u64 = data[i * 100..(i + 1) * 100].iter().sum();
            sum.fetch_add(chunk, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }

    #[test]
    #[should_panic(expected = "a re_exec pool task panicked")]
    fn task_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        pool.run_indexed(4, |i| {
            if i == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let pool = WorkerPool::new(1);
        let out = pool.map_indexed(16, |i| i + 1);
        assert_eq!(out.len(), 16);
        assert_eq!(out[15], 16);
    }
}
