//! Interning identity for rank keys.
//!
//! The frontier kernel in `rankedenum-core` stores every distinct rank key
//! **once** in a per-node interner and lets priority-queue entries carry a
//! `u32` key id instead of a cloned key — the representation trick that
//! keeps heap entries constant-size no matter how wide an [`ExactSum`]
//! expansion or a lexicographic key vector grows. Interning needs two
//! things beyond the [`Ord`] bound every key already has: a cheap hash of
//! the key's *representation* to bucket candidates, and a byte count for
//! memory accounting. [`RankKey`] provides both.
//!
//! The fingerprint contract is deliberately one-sided:
//!
//! * keys with identical representations MUST have identical fingerprints
//!   (so duplicates dedup), while
//! * keys that compare [`Ordering::Equal`](std::cmp::Ordering::Equal)
//!   through *different* representations MAY fingerprint differently.
//!
//! The second case merely stores the key twice under two ids; every
//! comparison still goes through `Ord`, so correctness never depends on
//! perfect deduplication. This sidesteps the classic float pitfall: none
//! of the key types here can implement [`std::hash::Hash`] consistently
//! with their value-based `Eq` (e.g. [`ExactSum`] equality is decided by
//! an exact difference, not by representation), but a representation
//! fingerprint is always available.

use crate::weight::{ExactSum, Weight};
use std::fmt::Debug;
use std::hash::Hasher;

/// A rank key that can be interned: totally ordered, cloneable, and able
/// to report a representation fingerprint plus its owned heap bytes.
///
/// This is the bound on [`Ranking::Key`](crate::Ranking::Key); every key
/// type shipped by this crate implements it, as do the integer types (for
/// tests and custom rankings).
pub trait RankKey: Ord + Clone + Debug + Send {
    /// Hash of the key's representation. Identical representations must
    /// agree; `Ord`-equal keys with different representations may not
    /// (see the module docs for why that is sound).
    fn fingerprint(&self) -> u64;

    /// Heap bytes owned by the key beyond `size_of::<Self>()`. Used for
    /// frontier memory accounting; an estimate based on `len` (not
    /// capacity) so it is deterministic across runs.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// `DefaultHasher` seeded deterministically (its `new()` uses fixed keys),
/// so fingerprints are stable within a process run.
fn hash_u64s(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for w in words {
        h.write_u64(w);
    }
    h.finish()
}

impl RankKey for Weight {
    /// [`Weight`] equality is `total_cmp`-based, and `total_cmp` equality
    /// is exactly bit equality — so the bit pattern is a *perfect*
    /// fingerprint here.
    fn fingerprint(&self) -> u64 {
        self.value().to_bits()
    }
}

impl RankKey for ExactSum {
    /// Canonical (compressed, nonadjacent) expansions of the same value
    /// agree component-wise in practice; the fingerprint hashes the
    /// component bits in order.
    fn fingerprint(&self) -> u64 {
        hash_u64s(self.components().iter().map(|c| c.to_bits()))
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(self.components())
    }
}

impl<K: RankKey> RankKey for Vec<K> {
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_usize(self.len());
        for k in self {
            h.write_u64(k.fingerprint());
        }
        h.finish()
    }

    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<K>() + self.iter().map(RankKey::heap_bytes).sum::<usize>()
    }
}

macro_rules! int_rank_key {
    ($($t:ty),*) => {
        $(impl RankKey for $t {
            fn fingerprint(&self) -> u64 {
                *self as u64
            }
        })*
    };
}

int_rank_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_representations_fingerprint_equal() {
        let a = ExactSum::of([Weight::new(0.1), Weight::new(0.2)]);
        let b = ExactSum::of([Weight::new(0.1), Weight::new(0.2)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            Weight::new(3.5).fingerprint(),
            Weight::new(3.5).fingerprint()
        );
        assert_eq!(vec![1u64, 2].fingerprint(), vec![1u64, 2].fingerprint());
    }

    #[test]
    fn different_values_fingerprint_differently_in_practice() {
        assert_ne!(
            Weight::new(1.0).fingerprint(),
            Weight::new(2.0).fingerprint()
        );
        assert_ne!(vec![1u64].fingerprint(), vec![1u64, 1].fingerprint());
    }

    #[test]
    fn order_independent_sums_share_a_fingerprint() {
        // ExactSum canonicalises, so permuted addends produce the same
        // representation — and therefore the same fingerprint.
        let a = ExactSum::of([Weight::new(0.1), Weight::new(1e16), Weight::new(0.2)]);
        let b = ExactSum::of([Weight::new(0.2), Weight::new(0.1), Weight::new(1e16)]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn heap_bytes_track_component_count() {
        assert_eq!(ExactSum::zero().heap_bytes(), 0);
        let s = ExactSum::of([Weight::new(1e16), Weight::new(0.5)]);
        assert_eq!(s.heap_bytes(), s.components().len() * 8);
        assert!(s.heap_bytes() >= 16, "two-component expansion");
        let v: Vec<Weight> = vec![Weight::new(1.0); 3];
        assert_eq!(v.heap_bytes(), 3 * std::mem::size_of::<Weight>());
        assert_eq!(7u64.heap_bytes(), 0);
    }
}
