//! Smoke-test every example binary so the quickstart and the other
//! `examples/` programs in the crate documentation stay honest: each one
//! must build (cargo compiles examples alongside tests) and exit
//! successfully when run.

use std::path::PathBuf;
use std::process::Command;

/// The example binaries shipped with the crate. Keep in sync with
/// `examples/`; the test fails loudly when one is missing so a new example
/// gets added here (and a removed one gets dropped).
const EXAMPLES: &[&str] = &[
    "appendix_b_blowup",
    "coauthor_top_k",
    "explain_analyze",
    "graph_cycles",
    "ldbc_union",
    "quickstart",
    "recommendation_scores",
    "server_quickstart",
    "sql_frontend",
    "star_tradeoff",
];

/// Directory holding the compiled example binaries for the active profile:
/// the test binary lives in `target/<profile>/deps/`, the examples in
/// `target/<profile>/examples/`.
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    exe.parent()
        .and_then(|deps| deps.parent())
        .expect("target profile dir")
        .join("examples")
}

#[test]
fn all_examples_run_successfully() {
    let dir = examples_dir();
    let source_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let listed: std::collections::BTreeSet<&str> = EXAMPLES.iter().copied().collect();
    for entry in std::fs::read_dir(&source_dir).expect("examples/ exists") {
        let name = entry.unwrap().path();
        let stem = name.file_stem().unwrap().to_string_lossy().to_string();
        assert!(
            listed.contains(stem.as_str()),
            "examples/{stem}.rs is not covered by the smoke test; add it to EXAMPLES"
        );
    }

    let mut failures = Vec::new();
    for name in EXAMPLES {
        let bin = dir.join(name);
        if !bin.exists() {
            failures.push(format!(
                "{name}: binary not found at {} (is the example still declared?)",
                bin.display()
            ));
            continue;
        }
        let started = std::time::Instant::now();
        // Shrink the documented workload sizes so the whole sweep stays fast
        // even in debug builds; see `rankedenum::scale`.
        match Command::new(&bin).env("RE_SCALE", "0.02").output() {
            Ok(out) if out.status.success() => {
                assert!(
                    !out.stdout.is_empty(),
                    "{name} printed nothing; examples should show their results"
                );
                eprintln!("example {name}: ok in {:.2?}", started.elapsed());
            }
            Ok(out) => failures.push(format!(
                "{name}: exited with {}\n--- stderr ---\n{}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            )),
            Err(e) => failures.push(format!("{name}: failed to launch: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "example smoke test failures:\n{}",
        failures.join("\n")
    );
}
