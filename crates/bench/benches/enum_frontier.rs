//! Arena frontier kernel vs. the pre-refactor owned-tuple engine:
//! time-to-k **and** frontier memory, old vs. new, on DBLP 2-hop, 3-hop
//! and the 6-cycle.
//!
//! The arena kernel exists to shrink the frontier's constant factors: cell
//! outputs in fixed-stride slabs instead of per-cell `Tuple`s, interned
//! rank keys instead of per-entry clones, 8-byte heap entries instead of
//! owned `(key, tuple, id)` triples. This harness pins both sides of that
//! claim against [`ReferenceAcyclic`] (the retained pre-refactor engine):
//!
//! * `*_ms` — best-of-samples time-to-k (enumerator build + first k
//!   answers), the unit a `LIMIT k` client pays;
//! * `*_bytes` — frontier bytes retained after the k answers: the arena
//!   engine reports its accounted `frontier_bytes`, the reference engine
//!   walks its owned cells, queues and keys.
//!
//! Outputs are cross-checked tuple-for-tuple before any number is
//! accepted. The new engine runs through [`InstrumentedStream`] — per-
//! `next()` wall-clock timing, exactly what a server cursor pays — so the
//! time ratios double as the **instrumentation-overhead gate**: `ci.sh`
//! runs `check_bench`, which enforces the acceptance gates (new strictly
//! smaller frontiers, ≥2× on 3-hop, time within 1.05× of old) and fails
//! on >25% regressions of the time and bytes ratios against the committed
//! `BENCH_enum_baseline.json`, instrumentation on.
//!
//! JSON schema: `{edges, cycle_edges, machine_threads, instrumented,
//! entries: [{query, k, old_ms, new_ms, old_bytes, new_bytes,
//! new_peak_bytes}]}`.

use rankedenum_core::{
    AcyclicEnumerator, CyclicEnumerator, InstrumentedStream, RankedStream, ReferenceAcyclic,
};
use re_bench::Scale;
use re_storage::Tuple;
use re_workloads::membership::WeightScheme;
use re_workloads::DblpWorkload;
use std::time::{Duration, Instant};

const ACYCLIC_SAMPLES: usize = 5;
const CYCLIC_SAMPLES: usize = 2;

struct Entry {
    query: String,
    k: usize,
    old_ms: f64,
    new_ms: f64,
    old_bytes: u64,
    new_bytes: u64,
    new_peak_bytes: u64,
}

/// Best-of-samples runtime of `run`, which returns `(answers, bytes,
/// peak)`; the answers and byte counts must be identical across samples
/// (they are deterministic), and the last sample's are returned.
fn best_of(
    samples: usize,
    mut run: impl FnMut() -> (Vec<Tuple>, u64, u64),
) -> (f64, Vec<Tuple>, u64, u64) {
    let mut best = Duration::MAX;
    let mut out = (Vec::new(), 0, 0);
    for _ in 0..samples {
        let start = Instant::now();
        out = run();
        best = best.min(start.elapsed());
    }
    (best.as_secs_f64() * 1_000.0, out.0, out.1, out.2)
}

fn measure_acyclic(dblp: &DblpWorkload, spec: &re_workloads::QuerySpec, k: usize) -> Entry {
    let (new_ms, from_new, new_bytes, new_peak) = best_of(ACYCLIC_SAMPLES, || {
        let opened_at = Instant::now();
        let (e, phases) = re_obs::capture_phases(|| {
            AcyclicEnumerator::new(&spec.query, dblp.db(), spec.sum_ranking()).expect("arena build")
        });
        let mut e = InstrumentedStream::new(Box::new(e), opened_at, phases);
        let answers: Vec<Tuple> = e.by_ref().take(k).collect();
        let snap = e.stats_snapshot();
        assert_eq!(snap.tuple_allocs, 0, "arena hot path allocated");
        (answers, snap.frontier_bytes, snap.frontier_peak_bytes)
    });
    let (old_ms, from_old, old_bytes, _) = best_of(ACYCLIC_SAMPLES, || {
        let mut e = ReferenceAcyclic::new(&spec.query, dblp.db(), spec.sum_ranking())
            .expect("reference build");
        let answers: Vec<Tuple> = e.by_ref().take(k).collect();
        let bytes = e.frontier_bytes();
        (answers, bytes, bytes)
    });
    assert_eq!(from_new, from_old, "{} k={k}: new vs old", spec.name);
    Entry {
        query: spec.name.clone(),
        k,
        old_ms,
        new_ms,
        old_bytes,
        new_bytes,
        new_peak_bytes: new_peak,
    }
}

fn measure_cyclic(
    dblp: &DblpWorkload,
    spec: &re_workloads::QuerySpec,
    plan: &re_query::GhdPlan,
    k: usize,
) -> Entry {
    let (new_ms, from_new, new_bytes, new_peak) = best_of(CYCLIC_SAMPLES, || {
        let opened_at = Instant::now();
        let (e, phases) = re_obs::capture_phases(|| {
            CyclicEnumerator::new(&spec.query, dblp.db(), spec.sum_ranking(), plan)
                .expect("arena cyclic build")
        });
        let mut e = InstrumentedStream::new(Box::new(e), opened_at, phases);
        let answers: Vec<Tuple> = e.by_ref().take(k).collect();
        let snap = e.stats_snapshot();
        assert_eq!(snap.tuple_allocs, 0, "arena hot path allocated");
        (answers, snap.frontier_bytes, snap.frontier_peak_bytes)
    });
    let (old_ms, from_old, old_bytes, _) = best_of(CYCLIC_SAMPLES, || {
        let mut e = ReferenceAcyclic::for_cyclic(&spec.query, dblp.db(), spec.sum_ranking(), plan)
            .expect("reference cyclic build");
        let answers: Vec<Tuple> = e.by_ref().take(k).collect();
        let bytes = e.frontier_bytes();
        (answers, bytes, bytes)
    });
    assert_eq!(from_new, from_old, "{} k={k}: new vs old", spec.name);
    Entry {
        query: spec.name.clone(),
        k,
        old_ms,
        new_ms,
        old_bytes,
        new_bytes,
        new_peak_bytes: new_peak,
    }
}

fn main() {
    let factor = Scale::from_env().factor();
    let edges = 5_000 * factor;
    let cycle_edges = 2_200 * factor;
    let dblp = DblpWorkload::generate(edges, 42, WeightScheme::Random);
    let cycle_dblp = DblpWorkload::generate(cycle_edges, 42, WeightScheme::Random);

    let mut entries: Vec<Entry> = Vec::new();
    for spec in [dblp.two_hop(), dblp.three_hop()] {
        for k in [10usize, 1_000] {
            entries.push(measure_acyclic(&dblp, &spec, k));
        }
    }
    let (cycle_spec, cycle_plan) = cycle_dblp.cycle(3); // the 6-cycle
    for k in [10usize, 1_000] {
        entries.push(measure_cyclic(&cycle_dblp, &cycle_spec, &cycle_plan, k));
    }

    for e in &entries {
        println!(
            "enum_frontier/{}/k={}: new {:.2} ms / {} B (peak {} B)  old {:.2} ms / {} B  \
             (old/new time {:.2}x, old/new bytes {:.2}x)",
            e.query,
            e.k,
            e.new_ms,
            e.new_bytes,
            e.new_peak_bytes,
            e.old_ms,
            e.old_bytes,
            e.old_ms / e.new_ms,
            e.old_bytes as f64 / e.new_bytes as f64,
        );
    }

    let entries_json: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "{{\"query\":\"{}\",\"k\":{},\"old_ms\":{:.3},\"new_ms\":{:.3},\
                 \"old_bytes\":{},\"new_bytes\":{},\"new_peak_bytes\":{}}}",
                e.query, e.k, e.old_ms, e.new_ms, e.old_bytes, e.new_bytes, e.new_peak_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\"edges\":{edges},\"cycle_edges\":{cycle_edges},\"machine_threads\":{},\
         \"instrumented\":true,\"entries\":[{}]}}\n",
        re_exec::machine_threads(),
        entries_json.join(",")
    );
    // The repo root is two levels above the bench crate.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_enum.json");
    std::fs::write(&out, json).expect("write BENCH_enum.json");
    println!("wrote {}", out.display());
}
