//! Object-safe view of a live ranked enumeration.
//!
//! The enumerators in this crate are generic over the ranking function, so
//! a component that keeps *many* live enumerations of different shapes —
//! e.g. a query server's session table, where each session holds a
//! resumable cursor — needs a common, type-erased interface. A
//! [`RankedStream`] is exactly that: a `Send` iterator over output tuples
//! in rank order that also reports its output attributes, the enumeration
//! strategy it runs and a cheap snapshot of its statistics.
//!
//! All enumerators own their inputs (the full-reducer pass copies the
//! relations they need out of the database), so a boxed stream can migrate
//! freely between worker threads for as long as the session lives.

use crate::acyclic::AcyclicEnumerator;
use crate::auto::{Algorithm, RankedEnumerator};
use crate::cyclic::CyclicEnumerator;
use crate::lexi::LexiEnumerator;
use crate::stats::StatsSnapshot;
use crate::union::UnionEnumerator;
use re_ranking::Ranking;
use re_storage::{Attr, Tuple};

/// A type-erased, thread-migratable ranked enumeration in progress.
pub trait RankedStream: Iterator<Item = Tuple> + Send {
    /// The projection attributes, in output order.
    fn output_attrs(&self) -> &[Attr];

    /// The enumeration strategy driving this stream.
    fn algorithm(&self) -> Algorithm;

    /// Cheap summary of the work done so far. Monotone, so per-page deltas
    /// can be computed by differencing two snapshots.
    fn stats_snapshot(&self) -> StatsSnapshot;

    /// The GHD plan shape behind this stream, when the query needed a
    /// decomposition: the chosen shape, annotated with the fallback reason
    /// if selection had to degrade to full materialisation. `None` for
    /// decomposition-free strategies.
    fn plan_shape(&self) -> Option<String> {
        None
    }
}

impl<R: Ranking + Clone> RankedStream for AcyclicEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        AcyclicEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::Acyclic
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }
}

impl<R: Ranking + Clone> RankedStream for CyclicEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        CyclicEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::CyclicGhd
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    fn plan_shape(&self) -> Option<String> {
        let report = self.plan_report();
        Some(match &report.fallback {
            Some(reason) => format!("{} [fallback: {reason}]", report.shape),
            None => report.shape.clone(),
        })
    }
}

impl<R: Ranking + Clone> RankedStream for RankedEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        RankedEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        RankedEnumerator::algorithm(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    fn plan_shape(&self) -> Option<String> {
        match self {
            RankedEnumerator::Acyclic(_) => None,
            RankedEnumerator::Cyclic(c) => RankedStream::plan_shape(c),
        }
    }
}

impl<R: Ranking + Clone + 'static> RankedStream for UnionEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        UnionEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::UnionMerge
    }

    /// Merge counters plus every branch enumerator's work (preprocessing
    /// cells, branch priority queues); opaque `from_streams` sources
    /// contribute zero.
    fn stats_snapshot(&self) -> StatsSnapshot {
        UnionEnumerator::stats_snapshot(self)
    }
}

impl RankedStream for LexiEnumerator {
    fn output_attrs(&self) -> &[Attr] {
        LexiEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::Lexi
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_ranking::SumRanking;
    use re_storage::attr::attrs;
    use re_storage::{Database, Relation};

    fn assert_send<T: Send>(_: &T) {}

    #[test]
    fn enumerators_are_send_and_type_erasable() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["s", "t"]),
                vec![vec![1, 2], vec![2, 3], vec![2, 4]],
            )
            .unwrap(),
        )
        .unwrap();
        let q = QueryBuilder::new()
            .atom("E1", "E", ["x", "y"])
            .atom("E2", "E", ["y", "z"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let e = RankedEnumerator::new(&q, &db, SumRanking::value_sum()).unwrap();
        assert_send(&e);
        let mut boxed: Box<dyn RankedStream> = Box::new(e);
        assert_eq!(boxed.algorithm(), Algorithm::Acyclic);
        assert_eq!(boxed.output_attrs(), &[Attr::new("x"), Attr::new("z")]);
        let before = boxed.stats_snapshot();
        let first = boxed.next().unwrap();
        assert_eq!(first, vec![1, 3]);
        let delta = boxed.stats_snapshot().diff(&before);
        assert_eq!(delta.answers, 1);
        // The boxed stream can cross a thread boundary mid-enumeration.
        let rest = std::thread::spawn(move || boxed.collect::<Vec<_>>())
            .join()
            .unwrap();
        assert!(!rest.is_empty());
    }
}
