//! The star-query data structure with a preprocessing/delay tradeoff
//! (Algorithms 4 and 5, Theorem 2).
//!
//! For `Q*_m = π_{A_1..A_m}(R_1(A_1,B) ⋈ ... ⋈ R_m(A_m,B))` and a degree
//! threshold `δ ≥ 1`:
//!
//! * a value of `A_i` is **heavy** if it appears in at least `δ` tuples of
//!   `R_i`; a tuple is heavy if its `A_i` value is heavy;
//! * all-heavy answers (`O_H`) are fully materialised and sorted during
//!   preprocessing — there are at most `(|D|/δ)^m` of them;
//! * the remaining answers are partitioned by the *first* light position
//!   `i` into sub-queries `Q_i` (heavy on positions `< i`, light on `i`,
//!   unrestricted after), each handled by an [`AcyclicEnumerator`] rooted at
//!   `R_i`, whose per-answer duplication — and hence delay — is bounded by
//!   `δ`;
//! * enumeration is an `(m+1)`-way ranked merge of `O_H` and the `Q_i`.
//!
//! Choosing `δ = |D|^{1-ε}` yields the tradeoff of Theorem 2: delay
//! `O(|D|^{1-ε} log |D|)` with `O(|D|^{1+(m-1)ε})` preprocessing.

use crate::acyclic::AcyclicEnumerator;
use crate::error::EnumError;
use crate::merge::MergeEntry;
use crate::stats::{EnumStats, StatsSnapshot};
use re_exec::ExecContext;
use re_join::{full_reduce_ctx, par_hash_join, par_project_distinct};
use re_query::{Atom, JoinProjectQuery, JoinTree, StarShape};
use re_ranking::RankKey;
use re_ranking::Ranking;
use re_storage::{Attr, Database, HashIndex, Relation, Tuple};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ranked enumerator for star queries with a tunable degree threshold.
pub struct StarEnumerator<R: Ranking + Clone> {
    ranking: R,
    projection: Vec<Attr>,
    threshold: usize,
    /// All-heavy output, sorted by `(key, tuple)`.
    heavy: Vec<(R::Key, Tuple)>,
    heavy_cursor: usize,
    /// One acyclic enumerator per sub-query `Q_i`.
    subs: Vec<AcyclicEnumerator<R>>,
    pq: BinaryHeap<Reverse<MergeEntry<R::Key>>>,
    stats: EnumStats,
}

impl<R: Ranking + Clone> StarEnumerator<R> {
    /// Build the enumerator with an explicit degree threshold `δ ≥ 1`.
    pub fn new(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        threshold: usize,
    ) -> Result<Self, EnumError> {
        Self::new_ctx(query, db, ranking, threshold, &ExecContext::serial())
    }

    /// [`StarEnumerator::new`] with the preprocessing — full reducer and
    /// the all-heavy output materialisation (the `O_H` join + distinct of
    /// Algorithm 4, the expensive part at small δ) — running under `ctx`.
    /// Identical output at any thread count.
    pub fn new_ctx(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        threshold: usize,
        ctx: &ExecContext,
    ) -> Result<Self, EnumError> {
        if threshold == 0 {
            return Err(EnumError::InvalidThreshold);
        }
        let shape = StarShape::detect(query)?;
        query.validate_against(db)?;
        let m = query.atoms().len();
        let projection: Vec<Attr> = query.projection().to_vec();

        // Dangling-free atom relations (node index == atom index because the
        // tree is not pruned).
        let tree = JoinTree::build(query)?;
        let (reduced, rstats) = full_reduce_ctx(ctx, query, &tree, db)?;
        let empty = reduced.iter().any(|r| r.is_empty());

        // Heavy/light split per atom, on the atom's leaf attribute(s).
        let mut heavy_rels: Vec<Relation> = Vec::with_capacity(m);
        let mut light_rels: Vec<Relation> = Vec::with_capacity(m);
        for (i, rel) in reduced.iter().enumerate() {
            let leaf = &shape.leaves[i];
            let idx = HashIndex::build(rel, leaf)?;
            let leaf_pos = rel.positions(leaf)?;
            let mut heavy = Relation::new(format!("{}_heavy", rel.name()), rel.attrs().to_vec());
            let mut light = Relation::new(format!("{}_light", rel.name()), rel.attrs().to_vec());
            for t in rel.iter() {
                let key: Tuple = leaf_pos.iter().map(|&p| t[p]).collect();
                if idx.get(&key).len() >= threshold {
                    heavy.push_unchecked(t);
                } else {
                    light.push_unchecked(t);
                }
            }
            heavy_rels.push(heavy);
            light_rels.push(light);
        }

        // O_H: the all-heavy output, materialised and sorted.
        let mut heavy_output: Vec<(R::Key, Tuple)> = Vec::new();
        if !empty && heavy_rels.iter().all(|r| !r.is_empty()) {
            let mut acc = heavy_rels[0].clone();
            for rel in &heavy_rels[1..] {
                acc = par_hash_join(ctx, &acc, rel, "heavy_join")?;
            }
            let distinct = par_project_distinct(ctx, &acc, &projection)?;
            heavy_output = distinct
                .iter()
                .map(|t| {
                    let tuple = t.to_vec();
                    (ranking.key_of(&projection, &tuple), tuple)
                })
                .collect();
            heavy_output.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        }

        // Sub-queries Q_i: heavy before i, light at i, unrestricted after.
        let mut subs: Vec<AcyclicEnumerator<R>> = Vec::with_capacity(m);
        if !empty {
            for i in 0..m {
                let mut sub_db = Database::new();
                let mut atoms = Vec::with_capacity(m);
                for (j, atom) in query.atoms().iter().enumerate() {
                    let mut rel = if j < i {
                        heavy_rels[j].clone()
                    } else if j == i {
                        light_rels[j].clone()
                    } else {
                        reduced[j].clone()
                    };
                    let rel_name = format!("q{i}_{}", atom.name);
                    rel.set_name(rel_name.clone());
                    sub_db.set_relation(rel);
                    atoms.push(Atom::new(atom.name.clone(), rel_name, atom.vars.clone()));
                }
                let sub_query = JoinProjectQuery::new(atoms, projection.clone())?;
                // Join tree T_i: R_i as root, all other relations as children.
                let sub_tree = JoinTree::build_rooted(&sub_query, i)?;
                subs.push(AcyclicEnumerator::with_tree_ctx(
                    &sub_query,
                    &sub_db,
                    ranking.clone(),
                    sub_tree,
                    ctx,
                )?);
            }
        }

        // Seed the (m+1)-way merge.
        let mut pq = BinaryHeap::new();
        for (i, sub) in subs.iter_mut().enumerate() {
            if let Some(tuple) = sub.next() {
                let key = ranking.key_of(&projection, &tuple);
                pq.push(Reverse(MergeEntry {
                    key,
                    tuple,
                    source: i,
                }));
            }
        }
        if let Some((key, tuple)) = heavy_output.first().cloned() {
            pq.push(Reverse(MergeEntry {
                key,
                tuple,
                source: m,
            }));
        }

        let mut stats = EnumStats::new();
        stats.record_reduce(rstats.passes, rstats.input_rows, rstats.output_rows);
        // The materialised all-heavy output is part of this enumerator's
        // parked footprint, alongside the sub-enumerators' frontiers
        // (accounted in their own stats).
        let heavy_bytes: u64 = heavy_output
            .iter()
            .map(|(k, t)| {
                (std::mem::size_of::<(R::Key, Tuple)>()
                    + k.heap_bytes()
                    + t.len() * std::mem::size_of::<re_storage::Value>()) as u64
            })
            .sum();
        stats.frontier_alloc(heavy_bytes, heavy_bytes);

        Ok(StarEnumerator {
            ranking,
            projection,
            threshold,
            heavy: heavy_output,
            heavy_cursor: 0,
            subs,
            pq,
            stats,
        })
    }

    /// Build the enumerator from the tradeoff parameter `ε ∈ [0, 1]` of
    /// Theorem 2 by setting `δ = ⌈|D|^{1-ε}⌉`. `ε = 0` recovers Theorem 1
    /// (no extra preprocessing); `ε = 1` fully materialises the sorted
    /// output.
    pub fn with_epsilon(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        epsilon: f64,
    ) -> Result<Self, EnumError> {
        let n = db.size().max(1) as f64;
        let delta = n.powf(1.0 - epsilon.clamp(0.0, 1.0)).ceil() as usize;
        Self::new(query, db, ranking, delta.max(1))
    }

    /// The degree threshold δ in use.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of all-heavy answers materialised during preprocessing — the
    /// space side of the tradeoff.
    pub fn heavy_output_size(&self) -> usize {
        self.heavy.len()
    }

    /// The projection attributes, in output order.
    pub fn output_attrs(&self) -> &[Attr] {
        &self.projection
    }

    /// Merge-level statistics (per-branch statistics live in the branches).
    pub fn stats(&self) -> &EnumStats {
        &self.stats
    }

    /// Total cells allocated across the sub-enumerators (memory footprint
    /// proxy, excludes the materialised heavy output).
    pub fn cell_count(&self) -> usize {
        self.subs.iter().map(|s| s.cell_count()).sum()
    }

    /// Combined counters: the merge's own operations and the materialised
    /// heavy output's bytes, plus every sub-enumerator's work and frontier
    /// footprint (the tradeoff's memory side, end to end).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut total = self.stats.snapshot();
        for sub in &self.subs {
            let s = sub.stats().snapshot();
            total.pq_pushes += s.pq_pushes;
            total.pq_pops += s.pq_pops;
            total.cells_created += s.cells_created;
            total.tuple_allocs += s.tuple_allocs;
            total.frontier_bytes += s.frontier_bytes;
            total.frontier_peak_bytes += s.frontier_peak_bytes;
        }
        total
    }
}

impl<R: Ranking + Clone> Iterator for StarEnumerator<R> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let Reverse(entry) = self.pq.pop()?;
        self.stats.record_pop();
        if entry.source < self.subs.len() {
            if let Some(tuple) = self.subs[entry.source].next() {
                let key = self.ranking.key_of(&self.projection, &tuple);
                self.pq.push(Reverse(MergeEntry {
                    key,
                    tuple,
                    source: entry.source,
                }));
                self.stats.record_push();
            }
        } else {
            self.heavy_cursor += 1;
            if let Some((key, tuple)) = self.heavy.get(self.heavy_cursor).cloned() {
                self.pq.push(Reverse(MergeEntry {
                    key,
                    tuple,
                    source: self.subs.len(),
                }));
                self.stats.record_push();
            }
        }
        self.stats.record_answer();
        Some(entry.tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_ranking::SumRanking;
    use re_storage::attr::attrs;

    /// A small bipartite instance: papers 10 and 11, authors 1..4.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "AP",
                attrs(["aid", "pid"]),
                vec![
                    vec![1, 10],
                    vec![2, 10],
                    vec![3, 10],
                    vec![1, 11],
                    vec![4, 11],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn two_star() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("AP1", "AP", ["a1", "p"])
            .atom("AP2", "AP", ["a2", "p"])
            .project(["a1", "a2"])
            .build()
            .unwrap()
    }

    fn expected_two_star() -> Vec<Tuple> {
        // co-author pairs through papers 10 ({1,2,3}) and 11 ({1,4}),
        // ranked by a1+a2, ties by tuple order.
        vec![
            vec![1, 1],
            vec![1, 2],
            vec![2, 1],
            vec![1, 3],
            vec![2, 2],
            vec![3, 1],
            vec![1, 4],
            vec![2, 3],
            vec![3, 2],
            vec![4, 1],
            vec![3, 3],
            vec![4, 4],
        ]
    }

    #[test]
    fn star_enumerator_matches_acyclic_enumerator_for_all_thresholds() {
        let db = db();
        let q = two_star();
        let reference: Vec<Tuple> = AcyclicEnumerator::new(&q, &db, SumRanking::value_sum())
            .unwrap()
            .collect();
        assert_eq!(reference, expected_two_star());
        for threshold in [1usize, 2, 3, 10] {
            let got: Vec<Tuple> = StarEnumerator::new(&q, &db, SumRanking::value_sum(), threshold)
                .unwrap()
                .collect();
            assert_eq!(got, reference, "threshold {threshold} changed the output");
        }
    }

    #[test]
    fn threshold_one_materialises_everything() {
        // With δ = 1 every value is heavy, so the entire output is
        // materialised during preprocessing and the sub-queries are empty.
        let db = db();
        let q = two_star();
        let e = StarEnumerator::new(&q, &db, SumRanking::value_sum(), 1).unwrap();
        assert_eq!(e.heavy_output_size(), expected_two_star().len());
    }

    #[test]
    fn huge_threshold_materialises_nothing() {
        let db = db();
        let q = two_star();
        let e = StarEnumerator::new(&q, &db, SumRanking::value_sum(), 1000).unwrap();
        assert_eq!(e.heavy_output_size(), 0);
        assert_eq!(e.collect::<Vec<_>>(), expected_two_star());
    }

    #[test]
    fn epsilon_extremes() {
        let db = db();
        let q = two_star();
        let eager = StarEnumerator::with_epsilon(&q, &db, SumRanking::value_sum(), 1.0).unwrap();
        assert!(eager.heavy_output_size() > 0);
        let lazy = StarEnumerator::with_epsilon(&q, &db, SumRanking::value_sum(), 0.0).unwrap();
        assert_eq!(lazy.threshold(), db.size());
        assert_eq!(eager.collect::<Vec<_>>(), lazy.collect::<Vec<_>>());
    }

    #[test]
    fn three_armed_star() {
        let db = db();
        let q = QueryBuilder::new()
            .atom("AP1", "AP", ["a1", "p"])
            .atom("AP2", "AP", ["a2", "p"])
            .atom("AP3", "AP", ["a3", "p"])
            .project(["a1", "a2", "a3"])
            .build()
            .unwrap();
        let reference: Vec<Tuple> = AcyclicEnumerator::new(&q, &db, SumRanking::value_sum())
            .unwrap()
            .collect();
        for threshold in [1usize, 2, 4] {
            let got: Vec<Tuple> = StarEnumerator::new(&q, &db, SumRanking::value_sum(), threshold)
                .unwrap()
                .collect();
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn zero_threshold_rejected_and_non_star_rejected() {
        let db = db();
        assert!(matches!(
            StarEnumerator::new(&two_star(), &db, SumRanking::value_sum(), 0),
            Err(EnumError::InvalidThreshold)
        ));
        // A 3-path projecting its endpoints is not a star query (the three
        // atoms share no common attribute).
        let path = QueryBuilder::new()
            .atom("R1", "AP", ["a", "b"])
            .atom("R2", "AP", ["b", "c"])
            .atom("R3", "AP", ["c", "d"])
            .project(["a", "d"])
            .build()
            .unwrap();
        assert!(StarEnumerator::new(&path, &db, SumRanking::value_sum(), 2).is_err());
    }

    #[test]
    fn empty_star_result() {
        let mut d = Database::new();
        d.add_relation(Relation::with_tuples("A", attrs(["a", "b"]), vec![vec![1, 10]]).unwrap())
            .unwrap();
        d.add_relation(Relation::with_tuples("B", attrs(["c", "b"]), vec![vec![2, 99]]).unwrap())
            .unwrap();
        let q = QueryBuilder::new()
            .atom("A", "A", ["a1", "p"])
            .atom("B", "B", ["a2", "p"])
            .project(["a1", "a2"])
            .build()
            .unwrap();
        let mut e = StarEnumerator::new(&q, &d, SumRanking::value_sum(), 2).unwrap();
        assert_eq!(e.next(), None);
    }
}
