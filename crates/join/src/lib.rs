//! Join-processing substrate.
//!
//! The enumeration algorithms of the paper assume a handful of classical
//! building blocks which this crate provides:
//!
//! * [`bind_atoms`] — materialise the atoms of a query against a database,
//!   renaming relation columns to query variables (this is what makes
//!   self-joins work without duplicating base tables in the database),
//! * [`semi_join`] / [`full_reduce`] — the Yannakakis full reducer that
//!   removes all dangling tuples before preprocessing,
//! * [`hash_join`] / [`full_join`] / [`yannakakis_join`] — natural-join
//!   materialisation used by the baselines, the star-query heavy output and
//!   GHD bag materialisation,
//! * [`project_distinct`] — `SELECT DISTINCT` projection,
//! * [`materialize_bag`] — evaluation of one GHD bag (Theorem 3).

pub mod bag;
pub mod bind;
pub mod error;
pub mod hashjoin;
pub mod reducer;

pub use bag::materialize_bag;
pub use bind::bind_atoms;
pub use error::JoinError;
pub use hashjoin::{full_join, hash_join, project_distinct, yannakakis_join};
pub use reducer::{full_reduce, full_reduce_relations, reduce_then_prune, semi_join};
