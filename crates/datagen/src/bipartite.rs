//! Bipartite membership graphs.
//!
//! Stand-ins for the paper's DBLP (`AuthorPapers(aid, pid)`), IMDB
//! (`PersonMovie(pid, mid)`), Friendster (user–group) and Memetracker
//! (user–meme) relations: a bipartite edge relation whose endpoints are
//! drawn from Zipf distributions, so a few entities are very prolific and
//! most appear only a handful of times — the skew that makes the full join
//! of 2-hop / 3-hop queries explode relative to the distinct output.

use crate::weights::{log_degree_weights, random_weights};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use re_ranking::Weight;
use re_storage::{Attr, Relation, Value};
use std::collections::{HashMap, HashSet};

/// Configuration of a bipartite membership graph.
#[derive(Clone, Debug)]
pub struct BipartiteConfig {
    /// Name of the generated relation (e.g. `"AuthorPapers"`).
    pub relation_name: String,
    /// Attribute name of the left side (e.g. `"aid"`).
    pub left_attr: String,
    /// Attribute name of the right side (e.g. `"pid"`).
    pub right_attr: String,
    /// Number of left entities (authors / persons / users).
    pub left_entities: usize,
    /// Number of right entities (papers / movies / groups).
    pub right_entities: usize,
    /// Number of distinct edges to generate.
    pub edges: usize,
    /// Zipf exponent of the left endpoint distribution.
    pub left_skew: f64,
    /// Zipf exponent of the right endpoint distribution.
    pub right_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BipartiteConfig {
    /// A DBLP-like configuration scaled by `scale` (≈ `scale` edges).
    pub fn dblp_like(scale: usize, seed: u64) -> Self {
        BipartiteConfig {
            relation_name: "AuthorPapers".into(),
            left_attr: "aid".into(),
            right_attr: "pid".into(),
            left_entities: (scale / 3).max(10),
            right_entities: (scale / 2).max(10),
            edges: scale,
            left_skew: 0.8,
            right_skew: 0.6,
            seed,
        }
    }

    /// An IMDB-like configuration (denser right side: movies have larger
    /// casts than papers have authors).
    pub fn imdb_like(scale: usize, seed: u64) -> Self {
        BipartiteConfig {
            relation_name: "PersonMovie".into(),
            left_attr: "pid".into(),
            right_attr: "mid".into(),
            left_entities: (scale / 4).max(10),
            right_entities: (scale / 8).max(10),
            edges: scale,
            left_skew: 0.9,
            right_skew: 0.7,
            seed,
        }
    }

    /// A social-network-like membership configuration (Friendster user–group
    /// or Memetracker user–meme): strong skew on both sides.
    pub fn social_like(scale: usize, seed: u64) -> Self {
        BipartiteConfig {
            relation_name: "Membership".into(),
            left_attr: "uid".into(),
            right_attr: "gid".into(),
            left_entities: (scale / 5).max(10),
            right_entities: (scale / 10).max(10),
            edges: scale,
            left_skew: 1.0,
            right_skew: 0.9,
            seed,
        }
    }
}

/// A generated bipartite dataset: the membership relation plus weight tables
/// for both entity classes.
#[derive(Clone, Debug)]
pub struct BipartiteDataset {
    /// The membership relation `R(left, right)`.
    pub relation: Relation,
    /// Random weights for left entities.
    pub left_random_weights: HashMap<Value, Weight>,
    /// Random weights for right entities.
    pub right_random_weights: HashMap<Value, Weight>,
    /// `log2(1 + degree)` weights for left entities.
    pub left_log_weights: HashMap<Value, Weight>,
    /// `log2(1 + degree)` weights for right entities.
    pub right_log_weights: HashMap<Value, Weight>,
    config: BipartiteConfig,
}

impl BipartiteDataset {
    /// Generate a dataset from a configuration.
    pub fn generate(config: BipartiteConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let left_sampler = ZipfSampler::new(config.left_entities, config.left_skew);
        let right_sampler = ZipfSampler::new(config.right_entities, config.right_skew);
        let mut relation = Relation::new(
            config.relation_name.clone(),
            [config.left_attr.clone(), config.right_attr.clone()],
        );
        let mut seen: HashSet<(Value, Value)> = HashSet::with_capacity(config.edges);
        // Cap the number of attempts so pathological configurations (more
        // requested edges than possible pairs) still terminate.
        let max_attempts = config.edges.saturating_mul(20).max(1000);
        let mut attempts = 0;
        while seen.len() < config.edges && attempts < max_attempts {
            attempts += 1;
            let l = left_sampler.sample(&mut rng) as Value + 1;
            let r = right_sampler.sample(&mut rng) as Value + 1;
            if seen.insert((l, r)) {
                relation.push_unchecked(&[l, r]);
            }
        }
        let left_attr = Attr::new(&config.left_attr);
        let right_attr = Attr::new(&config.right_attr);
        let left_ids: Vec<Value> = (1..=config.left_entities as Value).collect();
        let right_ids: Vec<Value> = (1..=config.right_entities as Value).collect();
        BipartiteDataset {
            left_random_weights: random_weights(left_ids, config.seed ^ 0xA5A5),
            right_random_weights: random_weights(right_ids, config.seed ^ 0x5A5A),
            left_log_weights: log_degree_weights(&relation, &left_attr),
            right_log_weights: log_degree_weights(&relation, &right_attr),
            relation,
            config,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &BipartiteConfig {
        &self.config
    }

    /// Left attribute name.
    pub fn left_attr(&self) -> Attr {
        Attr::new(&self.config.left_attr)
    }

    /// Right attribute name.
    pub fn right_attr(&self) -> Attr {
        Attr::new(&self.config.right_attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_storage::DegreeIndex;

    #[test]
    fn generates_requested_number_of_distinct_edges() {
        let ds = BipartiteDataset::generate(BipartiteConfig::dblp_like(2000, 1));
        assert_eq!(ds.relation.len(), 2000);
        let mut seen = HashSet::new();
        for t in ds.relation.iter() {
            assert!(seen.insert(t.to_vec()), "duplicate edge generated");
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = BipartiteDataset::generate(BipartiteConfig::dblp_like(500, 42));
        let b = BipartiteDataset::generate(BipartiteConfig::dblp_like(500, 42));
        let c = BipartiteDataset::generate(BipartiteConfig::dblp_like(500, 43));
        let rows = |r: &Relation| r.iter().map(|t| t.to_vec()).collect::<Vec<_>>();
        assert_eq!(rows(&a.relation), rows(&b.relation));
        assert_ne!(rows(&a.relation), rows(&c.relation));
    }

    #[test]
    fn degrees_are_skewed() {
        let ds = BipartiteDataset::generate(BipartiteConfig::social_like(5000, 7));
        let deg = DegreeIndex::build(&ds.relation, &ds.right_attr()).unwrap();
        // the most popular group should be far above the average degree
        let avg = ds.relation.len() as f64 / deg.distinct_values() as f64;
        assert!(
            (deg.max_degree() as f64) > 4.0 * avg,
            "max {} avg {}",
            deg.max_degree(),
            avg
        );
    }

    #[test]
    fn weight_tables_cover_all_entities_seen() {
        let ds = BipartiteDataset::generate(BipartiteConfig::imdb_like(1000, 3));
        for t in ds.relation.iter() {
            assert!(ds.left_random_weights.contains_key(&t[0]));
            assert!(ds.right_random_weights.contains_key(&t[1]));
            assert!(ds.left_log_weights.contains_key(&t[0]));
            assert!(ds.right_log_weights.contains_key(&t[1]));
        }
    }

    #[test]
    fn impossible_edge_counts_terminate() {
        // only 4 possible pairs but 100 requested
        let cfg = BipartiteConfig {
            relation_name: "T".into(),
            left_attr: "l".into(),
            right_attr: "r".into(),
            left_entities: 2,
            right_entities: 2,
            edges: 100,
            left_skew: 0.0,
            right_skew: 0.0,
            seed: 0,
        };
        let ds = BipartiteDataset::generate(cfg);
        assert!(ds.relation.len() <= 4);
    }
}
