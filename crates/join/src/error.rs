//! Error type for join processing.

use re_exec::CancelKind;
use re_query::QueryError;
use re_storage::StorageError;
use std::fmt;

/// Errors raised during join processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// A storage-layer error (missing relation/attribute, arity mismatch).
    Storage(StorageError),
    /// A query-layer error (cyclic query handed to an acyclic-only routine).
    Query(QueryError),
    /// The execution context's cancellation token tripped (deadline or
    /// explicit cancel); the kernel unwound at a morsel/pass boundary.
    Cancelled(CancelKind),
    /// An armed `re_fault` failpoint injected an error.
    Fault(String),
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Storage(e) => write!(f, "storage error: {e}"),
            JoinError::Query(e) => write!(f, "query error: {e}"),
            JoinError::Cancelled(kind) => write!(f, "{kind}"),
            JoinError::Fault(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<StorageError> for JoinError {
    fn from(e: StorageError) -> Self {
        JoinError::Storage(e)
    }
}

impl From<QueryError> for JoinError {
    fn from(e: QueryError) -> Self {
        JoinError::Query(e)
    }
}

impl From<CancelKind> for JoinError {
    fn from(kind: CancelKind) -> Self {
        JoinError::Cancelled(kind)
    }
}

impl From<re_fault::FaultError> for JoinError {
    fn from(e: re_fault::FaultError) -> Self {
        JoinError::Fault(e.to_string())
    }
}
