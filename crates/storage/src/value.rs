//! Attribute values and tuples.
//!
//! All attribute values are dictionary-encoded 64-bit unsigned integers. The
//! paper's computational model (uniform-cost RAM, constant-size data values)
//! is matched exactly by this representation; textual datasets are loaded
//! through [`crate::Dictionary`].

/// A single dictionary-encoded attribute value.
pub type Value = u64;

/// An owned tuple of values. Output tuples handed to the user and keys of
/// hash indexes use this representation.
pub type Tuple = Vec<Value>;

/// Concatenate two tuples into a new owned tuple.
pub fn concat_tuples(a: &[Value], b: &[Value]) -> Tuple {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out
}

/// Project a tuple onto the given positions.
pub fn project(tuple: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&p| tuple[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_order() {
        assert_eq!(concat_tuples(&[1, 2], &[3]), vec![1, 2, 3]);
        assert_eq!(concat_tuples(&[], &[3]), vec![3]);
        assert_eq!(concat_tuples(&[7], &[]), vec![7]);
    }

    #[test]
    fn project_selects_positions() {
        assert_eq!(project(&[10, 20, 30], &[2, 0]), vec![30, 10]);
        assert_eq!(project(&[10, 20, 30], &[]), Vec::<Value>::new());
        assert_eq!(project(&[10, 20, 30], &[1, 1]), vec![20, 20]);
    }
}
