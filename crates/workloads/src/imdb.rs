//! The IMDB-like workload (Figures 5e–h, 12, 14b of the paper).

use crate::membership::{MembershipWorkload, WeightScheme};
use re_datagen::BipartiteConfig;

/// The IMDB workload: a synthetic `PersonMovie(pid, mid)` relation with
/// cast-style skew (denser containers than DBLP), plus the paper's IMDB
/// queries.
#[derive(Clone, Debug)]
pub struct ImdbWorkload(MembershipWorkload);

impl ImdbWorkload {
    /// Generate an IMDB-like workload with roughly `scale` membership edges.
    pub fn generate(scale: usize, seed: u64, scheme: WeightScheme) -> Self {
        ImdbWorkload(MembershipWorkload::generate(
            "IMDB",
            BipartiteConfig::imdb_like(scale, seed),
            scheme,
        ))
    }

    /// Access the underlying membership workload (database and queries).
    pub fn workload(&self) -> &MembershipWorkload {
        &self.0
    }
}

impl std::ops::Deref for ImdbWorkload {
    type Target = MembershipWorkload;
    fn deref(&self) -> &MembershipWorkload {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imdb_workload_exposes_the_papers_queries() {
        let w = ImdbWorkload::generate(300, 2, WeightScheme::Random);
        assert_eq!(w.two_hop().name, "IMDB2hop");
        assert_eq!(w.three_star().name, "IMDB3star");
        let (cycle, plan) = w.cycle(2);
        assert_eq!(cycle.name, "IMDB4cycle");
        assert_eq!(plan.len(), 2);
    }
}
