//! Relations: named, flat, row-major tables over a fixed attribute schema.

use crate::attr::Attr;
use crate::error::StorageError;
use crate::value::{Tuple, Value};
use std::collections::HashSet;

/// A relation instance `R(A_1, ..., A_a)`.
///
/// Tuples are stored row-major in a single flat `Vec<Value>`; the `i`-th
/// tuple occupies `data[i*arity .. (i+1)*arity]`. All operations that the
/// enumeration algorithms need — projection, selection, semi-join filtering,
/// degree counting — are positional and allocation-conscious.
#[derive(Clone, Debug)]
pub struct Relation {
    name: String,
    attrs: Vec<Attr>,
    data: Vec<Value>,
}

impl Relation {
    /// Create an empty relation with the given name and schema.
    pub fn new(name: impl Into<String>, attrs: impl IntoIterator<Item = impl Into<Attr>>) -> Self {
        Relation {
            name: name.into(),
            attrs: attrs.into_iter().map(Into::into).collect(),
            data: Vec::new(),
        }
    }

    /// Create a relation and bulk-load tuples.
    pub fn with_tuples(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<Attr>>,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, StorageError> {
        let mut rel = Relation::new(name, attrs);
        for t in tuples {
            rel.push(&t)?;
        }
        Ok(rel)
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation (used when the same base table appears under
    /// several aliases in a self-join).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The attribute schema, in storage order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Rename the attributes (used for self-join aliases). The new schema
    /// must have the same arity.
    pub fn set_attrs(&mut self, attrs: impl IntoIterator<Item = impl Into<Attr>>) {
        let new: Vec<Attr> = attrs.into_iter().map(Into::into).collect();
        assert_eq!(new.len(), self.attrs.len(), "set_attrs must preserve arity");
        self.attrs = new;
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.attrs.is_empty() {
            0
        } else {
            self.data.len() / self.attrs.len()
        }
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Position of an attribute in the schema.
    pub fn position(&self, attr: &Attr) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Positions of several attributes; errors if any attribute is missing.
    pub fn positions(&self, attrs: &[Attr]) -> Result<Vec<usize>, StorageError> {
        attrs
            .iter()
            .map(|a| {
                self.position(a)
                    .ok_or_else(|| StorageError::UnknownAttribute {
                        relation: self.name.clone(),
                        attribute: a.as_str().to_string(),
                    })
            })
            .collect()
    }

    /// Append a tuple.
    pub fn push(&mut self, tuple: &[Value]) -> Result<(), StorageError> {
        if tuple.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                got: tuple.len(),
            });
        }
        self.data.extend_from_slice(tuple);
        Ok(())
    }

    /// Append a tuple without arity checking (used by tight generator loops).
    /// Panics in debug builds on arity mismatch.
    pub fn push_unchecked(&mut self, tuple: &[Value]) {
        debug_assert_eq!(tuple.len(), self.arity());
        self.data.extend_from_slice(tuple);
    }

    /// The `i`-th tuple as a slice.
    pub fn tuple(&self, i: usize) -> &[Value] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterate over all tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.arity().max(1))
    }

    /// Project the relation onto the given attributes, keeping duplicates.
    pub fn project(&self, attrs: &[Attr]) -> Result<Relation, StorageError> {
        let pos = self.positions(attrs)?;
        let mut out = Relation::new(format!("π({})", self.name), attrs.to_vec());
        let mut buf = Vec::with_capacity(pos.len());
        for t in self.iter() {
            buf.clear();
            buf.extend(pos.iter().map(|&p| t[p]));
            out.push_unchecked(&buf);
        }
        Ok(out)
    }

    /// Distinct values of one attribute.
    pub fn distinct_values(&self, attr: &Attr) -> Result<Vec<Value>, StorageError> {
        let p = self
            .position(attr)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attr.as_str().to_string(),
            })?;
        let mut seen: HashSet<Value> = HashSet::new();
        for t in self.iter() {
            seen.insert(t[p]);
        }
        let mut vals: Vec<Value> = seen.into_iter().collect();
        vals.sort_unstable();
        Ok(vals)
    }

    /// Retain only tuples satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&[Value]) -> bool) {
        let arity = self.arity();
        if arity == 0 {
            return;
        }
        let mut out = Vec::with_capacity(self.data.len());
        for t in self.data.chunks_exact(arity) {
            if keep(t) {
                out.extend_from_slice(t);
            }
        }
        self.data = out;
    }

    /// Select tuples where `attr == value`, returning a new relation.
    pub fn select_eq(&self, attr: &Attr, value: Value) -> Result<Relation, StorageError> {
        let p = self
            .position(attr)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attr.as_str().to_string(),
            })?;
        let mut out = Relation::new(self.name.clone(), self.attrs.clone());
        for t in self.iter() {
            if t[p] == value {
                out.push_unchecked(t);
            }
        }
        Ok(out)
    }

    /// Remove exact duplicate tuples (keeps first occurrence order).
    pub fn dedup_tuples(&mut self) {
        let arity = self.arity();
        if arity == 0 || self.data.is_empty() {
            return;
        }
        let mut seen: HashSet<Tuple> = HashSet::with_capacity(self.len());
        let mut out = Vec::with_capacity(self.data.len());
        for t in self.data.chunks_exact(arity) {
            if seen.insert(t.to_vec()) {
                out.extend_from_slice(t);
            }
        }
        self.data = out;
    }

    /// Sort tuples lexicographically by the given attribute positions.
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        let arity = self.arity();
        if arity == 0 {
            return;
        }
        let mut rows: Vec<Tuple> = self.iter().map(|t| t.to_vec()).collect();
        rows.sort_by(|a, b| {
            for &p in positions {
                match a[p].cmp(&b[p]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            a.cmp(b)
        });
        self.data.clear();
        for r in rows {
            self.data.extend_from_slice(&r);
        }
    }

    /// Total number of stored values (arity × len) — used to account `|D|`.
    pub fn value_count(&self) -> usize {
        self.data.len()
    }

    /// Reserve storage for `rows` additional tuples (used by operators that
    /// can bound their output from the input cardinalities).
    pub fn reserve_rows(&mut self, rows: usize) {
        self.data.reserve(rows.saturating_mul(self.arity()));
    }

    /// Append pre-validated row-major data: `values.len()` must be a
    /// multiple of the arity. Used by parallel kernels to merge per-morsel
    /// output chunks without re-checking every tuple.
    pub fn append_rows(&mut self, values: &[Value]) {
        debug_assert!(self.arity() > 0 && values.len().is_multiple_of(self.arity()));
        self.data.extend_from_slice(values);
    }

    /// Zero-copy chunk views of at most `rows_per_chunk` consecutive tuples
    /// each, in storage order — the unit of morsel dispatch. The views
    /// carry their global starting row, so per-chunk results can be merged
    /// back deterministically.
    pub fn chunks(&self, rows_per_chunk: usize) -> Vec<RelationChunk<'_>> {
        let arity = self.arity();
        if arity == 0 {
            return Vec::new();
        }
        let step = rows_per_chunk.max(1);
        (0..self.len())
            .step_by(step)
            .map(|first_row| {
                let end = (first_row + step).min(self.len());
                RelationChunk {
                    data: &self.data[first_row * arity..end * arity],
                    arity,
                    first_row,
                }
            })
            .collect()
    }
}

/// A zero-copy view of a contiguous tuple range of a [`Relation`], produced
/// by [`Relation::chunks`] for morsel dispatch.
#[derive(Clone, Copy, Debug)]
pub struct RelationChunk<'a> {
    data: &'a [Value],
    arity: usize,
    first_row: usize,
}

impl<'a> RelationChunk<'a> {
    /// Number of tuples in the chunk.
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Whether the chunk holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Global row index (in the parent relation) of the chunk's first tuple.
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// The `i`-th tuple of the chunk (0-based within the chunk).
    pub fn tuple(&self, i: usize) -> &'a [Value] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate over the chunk's tuples in storage order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [Value]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// Iterate over `(global_row, tuple)` pairs.
    pub fn global_rows(&self) -> impl Iterator<Item = (usize, &'a [Value])> + '_ {
        let first = self.first_row;
        self.iter().enumerate().map(move |(i, t)| (first + i, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn rel() -> Relation {
        Relation::with_tuples(
            "R",
            attrs(["A", "B"]),
            vec![vec![1, 10], vec![2, 10], vec![1, 20], vec![1, 10]],
        )
        .unwrap()
    }

    #[test]
    fn push_and_len() {
        let r = rel();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.tuple(2), &[1, 20]);
        assert_eq!(r.value_count(), 8);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let mut r = rel();
        let err = r.push(&[1, 2, 3]).unwrap_err();
        assert!(matches!(
            err,
            StorageError::ArityMismatch {
                expected: 2,
                got: 3,
                ..
            }
        ));
    }

    #[test]
    fn project_keeps_duplicates() {
        let r = rel();
        let p = r.project(&attrs(["A"])).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.arity(), 1);
    }

    #[test]
    fn distinct_values_sorted() {
        let r = rel();
        assert_eq!(r.distinct_values(&Attr::new("A")).unwrap(), vec![1, 2]);
        assert_eq!(r.distinct_values(&Attr::new("B")).unwrap(), vec![10, 20]);
    }

    #[test]
    fn select_eq_filters() {
        let r = rel();
        let s = r.select_eq(&Attr::new("B"), 10).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|t| t[1] == 10));
    }

    #[test]
    fn dedup_removes_exact_duplicates() {
        let mut r = rel();
        r.dedup_tuples();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut r = rel();
        r.retain(|t| t[0] == 1);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|t| t[0] == 1));
    }

    #[test]
    fn sort_by_positions_orders_rows() {
        let mut r = rel();
        r.sort_by_positions(&[1, 0]);
        let rows: Vec<Vec<Value>> = r.iter().map(|t| t.to_vec()).collect();
        assert_eq!(
            rows,
            vec![vec![1, 10], vec![1, 10], vec![2, 10], vec![1, 20]]
        );
    }

    #[test]
    fn chunks_cover_all_rows_in_order() {
        let r = rel();
        let chunks = r.chunks(3);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[1].len(), 1);
        assert_eq!(chunks[0].first_row(), 0);
        assert_eq!(chunks[1].first_row(), 3);
        let rebuilt: Vec<Vec<Value>> = chunks
            .iter()
            .flat_map(|c| c.iter().map(|t| t.to_vec()))
            .collect();
        let direct: Vec<Vec<Value>> = r.iter().map(|t| t.to_vec()).collect();
        assert_eq!(rebuilt, direct);
        let globals: Vec<usize> = chunks
            .iter()
            .flat_map(|c| c.global_rows().map(|(g, _)| g))
            .collect();
        assert_eq!(globals, vec![0, 1, 2, 3]);
        assert_eq!(chunks[1].tuple(0), r.tuple(3));
    }

    #[test]
    fn append_rows_extends_in_bulk() {
        let mut r = rel();
        r.reserve_rows(2);
        r.append_rows(&[7, 70, 8, 80]);
        assert_eq!(r.len(), 6);
        assert_eq!(r.tuple(5), &[8, 80]);
    }

    #[test]
    fn unknown_attribute_errors() {
        let r = rel();
        assert!(r.project(&attrs(["Z"])).is_err());
        assert!(r.distinct_values(&Attr::new("Z")).is_err());
    }
}
