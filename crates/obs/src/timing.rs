//! Per-operation wall-clock accounting.
//!
//! A [`TimingBreakdown`] is the per-cursor analogue of the global
//! registry: where the registry histograms aggregate over every
//! operation in the process, a breakdown describes *one* enumeration —
//! how long its preprocessing took (split by phase), when its first
//! answer arrived, and the distribution of delays between consecutive
//! answers. The paper's experimental sections report exactly these
//! quantities (TTF, TT(k), delay distributions), so cursors carry one.

use crate::hist::HistSnapshot;

/// Wall-clock profile of a single ranked enumeration.
#[derive(Clone, Debug)]
pub struct TimingBreakdown {
    /// Nanoseconds spent constructing the enumerator (parse, plan,
    /// full-reduce, decomposition, index builds).
    pub open_nanos: u64,
    /// Spans that closed on the opening thread during construction, as
    /// `(name, nanos)` in completion order. Phases may nest (e.g.
    /// `exec.pooled_run` inside `preprocess.bags`), so entries are a
    /// breakdown, not a partition.
    pub phases: Vec<(String, u64)>,
    /// Answers produced so far.
    pub answers: u64,
    /// Nanoseconds from the start of `open` to the first answer leaving
    /// the stream; `None` until a first answer (or if there is none).
    pub first_answer_nanos: Option<u64>,
    /// Distribution of wall-clock delays between consecutive `next()`
    /// returns (the paper's Figure 14 quantity, in nanoseconds).
    pub delay: HistSnapshot,
}

impl TimingBreakdown {
    /// Total nanoseconds attributed to a phase name in this breakdown.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .sum()
    }

    /// Render the phases as a compact `name=ms` list for log lines.
    pub fn phases_summary(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(self.phases.len());
        for (name, nanos) in &self.phases {
            parts.push(format!("{name}={:.3}ms", *nanos as f64 / 1e6));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_totals_sum_repeated_phases() {
        let breakdown = TimingBreakdown {
            open_nanos: 5_000_000,
            phases: vec![
                ("preprocess.sorted_index".into(), 1_000_000),
                ("preprocess.reduce".into(), 2_000_000),
                ("preprocess.sorted_index".into(), 500_000),
            ],
            answers: 0,
            first_answer_nanos: None,
            delay: HistSnapshot::empty(),
        };
        assert_eq!(breakdown.phase_nanos("preprocess.sorted_index"), 1_500_000);
        assert_eq!(breakdown.phase_nanos("preprocess.reduce"), 2_000_000);
        assert_eq!(breakdown.phase_nanos("missing"), 0);
        let summary = breakdown.phases_summary();
        assert!(summary.contains("preprocess.reduce=2.000ms"));
    }
}
