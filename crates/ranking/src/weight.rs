//! Totally ordered weights.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg};

/// A weight value with a *total* order.
///
/// Weights are `f64` under the hood but ordered with [`f64::total_cmp`], so
/// they can be used as keys of binary heaps and B-tree maps without the
/// partial-order footguns of raw floats. All weights produced by the data
/// generators are finite.
#[derive(Clone, Copy, Debug, Default)]
pub struct Weight(pub f64);

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight(0.0);

    /// Construct from a raw `f64`. Negative zero is normalised to positive
    /// zero so that arithmetically equal weights compare equal under the
    /// total order.
    pub fn new(w: f64) -> Self {
        Weight(w + 0.0)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl PartialEq for Weight {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Weight {
    type Output = Weight;
    fn add(self, rhs: Weight) -> Weight {
        Weight::new(self.0 + rhs.0)
    }
}

impl AddAssign for Weight {
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Neg for Weight {
    type Output = Weight;
    fn neg(self) -> Weight {
        Weight::new(-self.0)
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        Weight::new(iter.map(|w| w.0).sum())
    }
}

impl From<f64> for Weight {
    fn from(w: f64) -> Self {
        Weight::new(w)
    }
}

impl From<u64> for Weight {
    fn from(w: u64) -> Self {
        Weight(w as f64)
    }
}

impl From<i64> for Weight {
    fn from(w: i64) -> Self {
        Weight(w as f64)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An **exact** sum of `f64` weights, represented as a nonoverlapping
/// expansion (Shewchuk, *Adaptive Precision Floating-Point Arithmetic*).
///
/// The enumeration algorithms require rank keys to satisfy two properties
/// that a plain `f64` accumulator cannot guarantee:
///
/// 1. **order independence** — the same multiset of weights must produce
///    *exactly* the same key no matter the summation order, because answers
///    that are permutations of the same values (`[w1, w2]` vs `[w2, w1]`
///    under SUM) must compare exactly equal for the last-answer
///    deduplication to see them as adjacent rank ties; and
/// 2. **exact monotonicity** — replacing one addend with a strictly larger
///    one must never *decrease* the total, or a successor cell could sort
///    below its generating cell and break the priority-queue invariant.
///
/// Plain `f64` addition violates both at the ULP level (it is not
/// associative), which manifests as duplicated answers on weight multisets
/// with symmetric tuples. An expansion stores the sum exactly as a list of
/// non-overlapping components, so addition is truly associative and
/// commutative and comparisons are exact.
///
/// Expansions of practically encountered sums have 1–3 components, so keys
/// stay cheap to store and compare.
#[derive(Clone, Debug, Default)]
pub struct ExactSum {
    /// Nonadjacent (hence nonoverlapping) components in increasing
    /// magnitude order, zeros eliminated — `compress` re-canonicalises
    /// after every mutation. Empty means zero. The last component
    /// determines the sign and approximates the total to within one ulp.
    components: Vec<f64>,
}

/// Error-free transformation: `a + b = s + err` exactly (Knuth's TwoSum).
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bv = s - a;
    let av = s - bv;
    let err = (a - av) + (b - bv);
    (s, err)
}

/// TwoSum under the precondition `|a| ≥ |b|` (Dekker's FastTwoSum).
fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let err = b - (s - a);
    (s, err)
}

/// Error-free transformation: `a · b = p + err` exactly, via FMA (`mul_add`
/// is specified as a single rounding, so the residual is exact whether the
/// target has hardware FMA or uses the soft fallback).
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let err = a.mul_add(b, -p);
    (p, err)
}

impl ExactSum {
    /// The empty (zero) sum.
    pub fn zero() -> Self {
        ExactSum::default()
    }

    /// Exact sum of an iterator of weights.
    pub fn of(weights: impl IntoIterator<Item = Weight>) -> Self {
        let mut s = ExactSum::zero();
        for w in weights {
            s.add(w.value());
        }
        s
    }

    /// Add a raw `f64` exactly (GROW-EXPANSION, in place).
    ///
    /// This is the innermost loop of successor-key computation in the
    /// enumerators, so the grow pass mutates the component buffer directly
    /// instead of allocating a fresh one per addend: each residual
    /// overwrites the component it came from (zeros included — `compress`
    /// eliminates them while re-canonicalising), and only the final partial
    /// sum is pushed. The buffer's capacity is reused across additions.
    pub fn add(&mut self, x: f64) {
        if x == 0.0 {
            return;
        }
        let mut q = x;
        for e in self.components.iter_mut() {
            let (s, err) = two_sum(q, *e);
            *e = err;
            q = s;
        }
        self.components.push(q);
        self.compress();
    }

    /// Canonicalise to a **nonadjacent** expansion (Shewchuk's COMPRESS).
    ///
    /// GROW-EXPANSION keeps expansions nonoverlapping but not nonadjacent:
    /// after cancellation (mixed-sign addends) the components below the top
    /// one can be far larger than one ulp of the top — e.g. adding
    /// `2^60, 1, -(2^60 - 1024)` leaves `[1.0, 1024.0]` for the value 1025.
    /// The dominant-component shortcut in [`ExactSum::cmp_exact`] is only
    /// sound for nonadjacent expansions (tail < 1 ulp of the top), so every
    /// mutation re-canonicalises. Compression also collapses exactly
    /// representable sums to a single component, which is the fast path for
    /// both comparison and equality.
    fn compress(&mut self) {
        let e = &mut self.components;
        let m = e.len();
        if m < 2 {
            // The in-place grow pass keeps zero residuals (and can push a
            // zero total on full cancellation); canonical form has none.
            if m == 1 && e[0] == 0.0 {
                e.clear();
            }
            return;
        }
        // Downward pass: sweep significant partial sums towards the top,
        // storing them from the top end down.
        let mut q = e[m - 1];
        let mut bottom = m - 1;
        for i in (0..m - 1).rev() {
            let (big, small) = fast_two_sum(q, e[i]);
            if small != 0.0 {
                e[bottom] = big;
                bottom -= 1;
                q = small;
            } else {
                q = big;
            }
        }
        e[bottom] = q;
        // Upward pass: re-accumulate, emitting finalised low components.
        let mut out = 0usize;
        let mut q = e[bottom];
        for i in bottom + 1..m {
            let (big, small) = fast_two_sum(e[i], q);
            if small != 0.0 {
                e[out] = small;
                out += 1;
            }
            q = big;
        }
        if q != 0.0 {
            e[out] = q;
            out += 1;
        }
        e.truncate(out);
    }

    /// Add a weight exactly.
    pub fn add_weight(&mut self, w: Weight) {
        self.add(w.value());
    }

    /// Add another exact sum exactly.
    pub fn add_sum(&mut self, other: &ExactSum) {
        for &c in &other.components {
            self.add(c);
        }
    }

    /// Multiply by a scalar **exactly** (Shewchuk's SCALE-EXPANSION with
    /// zero elimination): the result represents the exact real product of
    /// the represented value and `b`. This is what makes exact products of
    /// weights possible — iterate `scale` over the factors and the result
    /// is independent of the multiplication order.
    #[must_use]
    pub fn scale(&self, b: f64) -> ExactSum {
        if b == 0.0 || self.components.is_empty() {
            return ExactSum::zero();
        }
        let mut h: Vec<f64> = Vec::with_capacity(self.components.len() * 2);
        let (mut q, err) = two_product(self.components[0], b);
        if err != 0.0 {
            h.push(err);
        }
        for &e in &self.components[1..] {
            let (t, t_err) = two_product(e, b);
            let (q2, h1) = two_sum(q, t_err);
            if h1 != 0.0 {
                h.push(h1);
            }
            let (q3, h2) = fast_two_sum(t, q2);
            if h2 != 0.0 {
                h.push(h2);
            }
            q = q3;
        }
        if q != 0.0 {
            h.push(q);
        }
        let mut scaled = ExactSum { components: h };
        scaled.compress();
        scaled
    }

    /// The canonical component list, in increasing magnitude order (empty
    /// means zero). Exposed for representation fingerprints and memory
    /// accounting; the represented value is the exact sum of the entries.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// The closest `f64` approximation of the exact sum.
    pub fn approx(&self) -> f64 {
        // Summing small-to-large; the final component dominates.
        self.components.iter().sum()
    }

    /// Exact sign comparison of `self - other`.
    ///
    /// Key comparisons are the innermost loop of every priority-queue
    /// operation in the enumerators, so the decisive cases are handled
    /// without allocating: single-component expansions compare directly,
    /// and multi-component expansions whose dominant components are
    /// separated by more than the expansions' tail bounds compare by those
    /// components alone. Only near-ties fall back to forming the exact
    /// difference.
    fn cmp_exact(&self, other: &ExactSum) -> Ordering {
        let (x, y) = match (self.components.last(), other.components.last()) {
            (None, None) => return Ordering::Equal,
            (None, Some(&y)) => return 0.0f64.total_cmp(&y),
            (Some(&x), None) => return x.total_cmp(&0.0),
            (Some(&x), Some(&y)) => (x, y),
        };
        if self.components.len() == 1 && other.components.len() == 1 {
            return x.total_cmp(&y);
        }
        // Expansions are kept **nonadjacent** by `compress`, so the
        // non-dominant components sum to less than one ulp of the dominant
        // one; if the dominant components differ by more than both tail
        // bounds combined, they decide the order. (This is unsound for
        // merely nonoverlapping expansions — see `compress`.)
        let tail_x = 2.0 * f64::EPSILON * x.abs() + f64::MIN_POSITIVE;
        let tail_y = 2.0 * f64::EPSILON * y.abs() + f64::MIN_POSITIVE;
        if x + tail_x < y - tail_y {
            return Ordering::Less;
        }
        if x - tail_x > y + tail_y {
            return Ordering::Greater;
        }
        // Near-tie: the sign of the exact difference decides.
        if self.components == other.components {
            return Ordering::Equal;
        }
        let mut diff = self.clone();
        for &c in &other.components {
            diff.add(-c);
        }
        match diff.components.last() {
            None => Ordering::Equal,
            Some(&d) if d > 0.0 => Ordering::Greater,
            Some(_) => Ordering::Less,
        }
    }
}

impl PartialEq for ExactSum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_exact(other) == Ordering::Equal
    }
}

impl Eq for ExactSum {}

impl PartialOrd for ExactSum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExactSum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(other)
    }
}

impl PartialEq<Weight> for ExactSum {
    fn eq(&self, other: &Weight) -> bool {
        *self == ExactSum::of([*other])
    }
}

impl PartialEq<ExactSum> for Weight {
    fn eq(&self, other: &ExactSum) -> bool {
        other == self
    }
}

impl From<Weight> for ExactSum {
    fn from(w: Weight) -> Self {
        ExactSum::of([w])
    }
}

impl fmt::Display for ExactSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.approx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_matches_f64() {
        assert!(Weight(1.0) < Weight(2.0));
        assert!(Weight(-1.0) < Weight(0.0));
        assert_eq!(Weight(3.0), Weight(3.0));
        let mut v = vec![Weight(2.0), Weight(-1.0), Weight(0.5)];
        v.sort();
        assert_eq!(v, vec![Weight(-1.0), Weight(0.5), Weight(2.0)]);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Weight(1.5) + Weight(2.5), Weight(4.0));
        let s: Weight = vec![Weight(1.0), Weight(2.0), Weight(3.0)]
            .into_iter()
            .sum();
        assert_eq!(s, Weight(6.0));
        assert_eq!(-Weight(2.0), Weight(-2.0));
        let mut w = Weight(1.0);
        w += Weight(1.0);
        assert_eq!(w, Weight(2.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Weight::from(3u64), Weight(3.0));
        assert_eq!(Weight::from(-4i64), Weight(-4.0));
        assert_eq!(Weight::from(0.25f64).value(), 0.25);
        assert_eq!(Weight::ZERO, Weight(0.0));
    }

    #[test]
    fn exact_sum_is_order_independent() {
        // The classic non-associativity witness: summing in different orders
        // gives different f64s but the same ExactSum.
        let ws = [0.1, 0.2, 0.3, 1e16, -1e16, 0.1];
        let forward = ExactSum::of(ws.iter().map(|&w| Weight::new(w)));
        let backward = ExactSum::of(ws.iter().rev().map(|&w| Weight::new(w)));
        assert_eq!(forward, backward);
        assert_eq!(forward.cmp(&backward), Ordering::Equal);
    }

    #[test]
    fn exact_sum_orders_by_exact_value() {
        let a = ExactSum::of([Weight::new(1e16), Weight::new(0.5)]);
        let b = ExactSum::of([Weight::new(1e16), Weight::new(1.0)]);
        // f64 addition cannot see the difference (both round to 1e16, the
        // ULP there being 2.0); the expansion can.
        assert_eq!(1e16 + 0.5, 1e16 + 1.0);
        assert!(a < b);
        let c = ExactSum::of([Weight::new(1.0), Weight::new(1e16)]);
        assert!(a < c);
        assert_eq!(b, c);
    }

    #[test]
    fn exact_sum_monotone_under_addend_replacement() {
        let mut base = ExactSum::of([Weight::new(0.3), Weight::new(0.7)]);
        let mut bumped = ExactSum::of([Weight::new(0.3), Weight::new(0.7000000000000001)]);
        assert!(base < bumped);
        base.add(0.123456789);
        bumped.add(0.123456789);
        assert!(base < bumped, "adding a common term must preserve order");
    }

    #[test]
    fn exact_sum_zero_and_cancellation() {
        let mut s = ExactSum::zero();
        assert_eq!(s, ExactSum::zero());
        assert_eq!(s.approx(), 0.0);
        s.add(0.1);
        s.add(-0.1);
        assert_eq!(s, ExactSum::zero());
        assert_eq!(s, Weight::new(0.0));
    }

    #[test]
    fn exact_sum_compares_with_weight() {
        let s = ExactSum::of([Weight::new(3.0), Weight::new(4.0)]);
        assert_eq!(s, Weight::new(7.0));
        assert_eq!(s.approx(), 7.0);
    }

    #[test]
    fn scale_is_exact_and_order_independent() {
        // 0.1 * 0.2 * 0.3 in every association order gives the same exact
        // product expansion, even though plain f64 products differ by ULPs.
        let factors = [0.1f64, 0.2, 0.3];
        let mut products = Vec::new();
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [2, 1, 0],
            [1, 2, 0],
            [2, 0, 1],
        ] {
            let mut p = ExactSum::from(Weight::new(factors[perm[0]]));
            p = p.scale(factors[perm[1]]);
            p = p.scale(factors[perm[2]]);
            products.push(p);
        }
        for p in &products[1..] {
            assert_eq!(*p, products[0]);
        }
        // Scaling by zero annihilates; scaling by one is the identity.
        assert_eq!(products[0].scale(0.0), ExactSum::zero());
        assert_eq!(products[0].scale(1.0), products[0]);
    }

    #[test]
    fn cancellation_compresses_to_canonical_form() {
        // Without compression, adding 2^60, 1, -(2^60 - 1024) leaves the
        // nonoverlapping-but-adjacent expansion [1.0, 1024.0] whose tail
        // (1.0) vastly exceeds one ulp of its top — which broke the
        // dominant-component comparison shortcut. Compression collapses it
        // to the exactly representable single component 1025.
        let big = (1u64 << 60) as f64;
        let s = ExactSum::of([
            Weight::new(big),
            Weight::new(1.0),
            Weight::new(-(big - 1024.0)),
        ]);
        assert_eq!(s.approx(), 1025.0);
        assert_eq!(s, Weight::new(1025.0));
        // The ordering near the cancelled value must be exact.
        let just_below = ExactSum::of([Weight::new(1024.5)]);
        assert!(just_below < s, "1024.5 must order below 1025");
        let just_above = ExactSum::of([Weight::new(1025.5)]);
        assert!(s < just_above);
    }

    #[test]
    fn in_place_add_reuses_the_component_buffer() {
        // Regression for the hot-path allocation: repeated adds must not
        // grow the buffer beyond the expansion's canonical length + 1, and
        // cancellation must restore the canonical empty form.
        let mut s = ExactSum::zero();
        for i in 0..1000 {
            s.add(0.1 * (i % 7 + 1) as f64);
        }
        assert!(
            s.components.len() <= 3,
            "canonical expansion stays short, got {}",
            s.components.len()
        );
        let total = s.clone();
        s.add_sum(&total.scale(-1.0));
        assert_eq!(s, ExactSum::zero());
        assert!(s.components.is_empty(), "cancellation must re-canonicalise");
        // Interleaved magnitudes still produce an order-independent result.
        let mut a = ExactSum::zero();
        let mut b = ExactSum::zero();
        let ws = [1e300, 1.0, -1e300, 1e-300, 3.5, -1.0];
        for &w in &ws {
            a.add(w);
        }
        for &w in ws.iter().rev() {
            b.add(w);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn scale_preserves_order_for_positive_factors() {
        let a = ExactSum::of([Weight::new(1e16), Weight::new(0.5)]);
        let b = ExactSum::of([Weight::new(1e16), Weight::new(1.0)]);
        assert!(a < b);
        let f = 1.0 / 3.0;
        assert!(a.scale(f) < b.scale(f), "exact scaling must preserve order");
    }
}
