//! A generic workload over a bipartite membership relation
//! `M(entity, container)` — the common shape behind the DBLP, IMDB,
//! Friendster and Memetracker experiments.

use crate::cyclic;
use crate::spec::QuerySpec;
use re_datagen::{BipartiteConfig, BipartiteDataset};
use re_query::{GhdPlan, QueryBuilder};
use re_ranking::{Weight, WeightAssignment};
use re_storage::{Database, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Which of the paper's two weighting schemes to use (Section 6.1.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightScheme {
    /// Uniformly random weights.
    Random,
    /// `log2(1 + degree)` weights.
    LogDegree,
}

/// A workload over one membership relation: the database, shared weight
/// tables and the paper's query shapes.
#[derive(Clone, Debug)]
pub struct MembershipWorkload {
    name: String,
    db: Database,
    relation: String,
    entity_weights: Arc<HashMap<Value, Weight>>,
    container_weights: Arc<HashMap<Value, Weight>>,
}

impl MembershipWorkload {
    /// Build a workload from a generated bipartite dataset.
    pub fn from_dataset(
        name: impl Into<String>,
        dataset: &BipartiteDataset,
        scheme: WeightScheme,
    ) -> Self {
        let mut db = Database::new();
        db.set_relation(dataset.relation.clone());
        let (entity_weights, container_weights) = match scheme {
            WeightScheme::Random => (
                dataset.left_random_weights.clone(),
                dataset.right_random_weights.clone(),
            ),
            WeightScheme::LogDegree => (
                dataset.left_log_weights.clone(),
                dataset.right_log_weights.clone(),
            ),
        };
        MembershipWorkload {
            name: name.into(),
            relation: dataset.relation.name().to_string(),
            db,
            entity_weights: Arc::new(entity_weights),
            container_weights: Arc::new(container_weights),
        }
    }

    /// Convenience: generate the dataset and build the workload in one call.
    pub fn generate(
        name: impl Into<String>,
        config: BipartiteConfig,
        scheme: WeightScheme,
    ) -> Self {
        let dataset = BipartiteDataset::generate(config);
        Self::from_dataset(name, &dataset, scheme)
    }

    /// The workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The database instance.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The membership relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Total instance size `|D|` as seen by a query with `atoms` self-join
    /// copies of the membership relation.
    pub fn instance_size(&self, atoms: usize) -> usize {
        self.db.size() * atoms
    }

    fn weights_for(&self, entity_vars: &[&str], container_vars: &[&str]) -> WeightAssignment {
        let mut w = WeightAssignment::zero();
        for v in entity_vars {
            w = w.with_shared_table(*v, Arc::clone(&self.entity_weights));
        }
        for v in container_vars {
            w = w.with_shared_table(*v, Arc::clone(&self.container_weights));
        }
        w
    }

    /// The 2-hop query: pairs of entities sharing a container
    /// (`DBLP2hop` / `IMDB2hop` / the Friendster and Memetracker
    /// 2-neighbourhood queries).
    pub fn two_hop(&self) -> QuerySpec {
        let query = QueryBuilder::new()
            .atom("M1", &self.relation, ["a1", "p"])
            .atom("M2", &self.relation, ["a2", "p"])
            .project(["a1", "a2"])
            .build()
            .expect("valid 2-hop query");
        QuerySpec::new(
            format!("{}2hop", self.name),
            query,
            self.weights_for(&["a1", "a2"], &[]),
        )
    }

    /// The 3-hop query: entity–container pairs three steps apart
    /// (`DBLP3hop` / `IMDB3hop` / 3-neighbourhood).
    pub fn three_hop(&self) -> QuerySpec {
        let query = QueryBuilder::new()
            .atom("M1", &self.relation, ["a", "p1"])
            .atom("M2", &self.relation, ["a2", "p1"])
            .atom("M3", &self.relation, ["a2", "p2"])
            .project(["a", "p2"])
            .build()
            .expect("valid 3-hop query");
        QuerySpec::new(
            format!("{}3hop", self.name),
            query,
            self.weights_for(&["a"], &["p2"]),
        )
    }

    /// The 4-hop query: entity pairs four steps apart (`DBLP4hop`).
    pub fn four_hop(&self) -> QuerySpec {
        let query = QueryBuilder::new()
            .atom("M1", &self.relation, ["a1", "p1"])
            .atom("M2", &self.relation, ["a3", "p1"])
            .atom("M3", &self.relation, ["a3", "p2"])
            .atom("M4", &self.relation, ["a2", "p2"])
            .project(["a1", "a2"])
            .build()
            .expect("valid 4-hop query");
        QuerySpec::new(
            format!("{}4hop", self.name),
            query,
            self.weights_for(&["a1", "a2"], &[]),
        )
    }

    /// The 3-star query: entity triples sharing one container
    /// (`DBLP3star` / `IMDB3star`), the flagship star query `Q*_3`.
    pub fn three_star(&self) -> QuerySpec {
        let query = QueryBuilder::new()
            .atom("M1", &self.relation, ["a1", "p"])
            .atom("M2", &self.relation, ["a2", "p"])
            .atom("M3", &self.relation, ["a3", "p"])
            .project(["a1", "a2", "a3"])
            .build()
            .expect("valid 3-star query");
        QuerySpec::new(
            format!("{}3star", self.name),
            query,
            self.weights_for(&["a1", "a2", "a3"], &[]),
        )
    }

    /// The `2k`-cycle query of Section 6.2.2 with its GHD plan
    /// (`k = 2, 3, 4` → four, six, eight cycle). The plan is chosen by the
    /// cost model against this workload's instance — for the balanced
    /// membership cycles that picks the two-arc split, whose bags stay
    /// near the input size instead of the Figure-2 middle-bag blow-up —
    /// falling back to the paper's Figure-2 template if selection fails.
    pub fn cycle(&self, k: usize) -> (QuerySpec, GhdPlan) {
        let query = cyclic::membership_cycle(&self.relation, k).expect("valid cycle query");
        let plan = GhdPlan::cost_based(&query, &self.db)
            .map(|sel| sel.plan)
            .unwrap_or_else(|_| cyclic::membership_cycle_plan(&query).expect("valid cycle plan"));
        let entity_vars: Vec<String> = query
            .projection()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        let refs: Vec<&str> = entity_vars.iter().map(|s| s.as_str()).collect();
        let spec = QuerySpec::new(
            format!("{}{}cycle", self.name, 2 * k),
            query,
            self.weights_for(&refs, &[]),
        );
        (spec, plan)
    }

    /// The bowtie query of Section 6.2.2 with its GHD plan.
    pub fn bowtie(&self) -> (QuerySpec, GhdPlan) {
        let query = cyclic::bowtie(&self.relation).expect("valid bowtie query");
        let plan = cyclic::bowtie_plan(&query).expect("valid bowtie plan");
        let spec = QuerySpec::new(
            format!("{}bowtie", self.name),
            query,
            self.weights_for(&["a2", "a3"], &[]),
        );
        (spec, plan)
    }

    /// The Appendix-D style worst-case query used by the Appendix-B blow-up
    /// experiment: an `arms`-ary star projecting only the first arm.
    pub fn star_project_first(&self, arms: usize) -> QuerySpec {
        let mut builder = QueryBuilder::new();
        for i in 1..=arms {
            builder = builder.atom(
                format!("M{i}"),
                &self.relation,
                [format!("x{i}"), "p".into()],
            );
        }
        let query = builder.project(["x1"]).build().expect("valid star query");
        QuerySpec::new(
            format!("{}star{}_project1", self.name, arms),
            query,
            self.weights_for(&["x1"], &[]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankedenum_core::{top_k, AcyclicEnumerator, CyclicEnumerator};
    use re_query::Hypergraph;

    fn workload() -> MembershipWorkload {
        MembershipWorkload::generate(
            "Test",
            BipartiteConfig::dblp_like(400, 17),
            WeightScheme::Random,
        )
    }

    #[test]
    fn query_shapes_are_well_formed() {
        let w = workload();
        for spec in [w.two_hop(), w.three_hop(), w.four_hop(), w.three_star()] {
            assert!(
                Hypergraph::of_query(&spec.query).is_acyclic(),
                "{}",
                spec.name
            );
            assert!(!spec.query.is_full());
        }
        assert_eq!(w.two_hop().query.atoms().len(), 2);
        assert_eq!(w.four_hop().query.atoms().len(), 4);
    }

    #[test]
    fn two_hop_runs_end_to_end() {
        let w = workload();
        let spec = w.two_hop();
        let top = top_k(&spec.query, w.db(), spec.sum_ranking(), 25).unwrap();
        assert_eq!(top.len(), 25);
        // co-membership always contains the reflexive pairs, so results exist
        let ranking = spec.sum_ranking();
        let keys: Vec<_> = top
            .iter()
            .map(|t| re_ranking::Ranking::key_of(&ranking, spec.query.projection(), t))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn three_hop_and_star_run() {
        let w = workload();
        for spec in [w.three_hop(), w.three_star()] {
            let e = AcyclicEnumerator::new(&spec.query, w.db(), spec.sum_ranking()).unwrap();
            assert!(e.take(10).count() > 0, "{} produced no answers", spec.name);
        }
    }

    #[test]
    fn cycles_run_with_their_plans() {
        let w = MembershipWorkload::generate(
            "Tiny",
            BipartiteConfig::dblp_like(150, 3),
            WeightScheme::Random,
        );
        let (spec, plan) = w.cycle(2);
        let e = CyclicEnumerator::new(&spec.query, w.db(), spec.sum_ranking(), &plan).unwrap();
        // four-cycles always exist (any co-membership pair with two shared
        // containers, or reflexive pairs sharing one container... at minimum
        // a1 = a2 with p1 = p2 is NOT allowed by distinct tuples, so just
        // check the enumerator terminates without error.
        let _ = e.take(5).count();
    }

    #[test]
    fn log_degree_scheme_changes_the_ranking() {
        let ds = BipartiteDataset::generate(BipartiteConfig::dblp_like(300, 23));
        let random = MembershipWorkload::from_dataset("W", &ds, WeightScheme::Random);
        let log = MembershipWorkload::from_dataset("W", &ds, WeightScheme::LogDegree);
        let a = top_k(
            &random.two_hop().query,
            random.db(),
            random.two_hop().sum_ranking(),
            50,
        )
        .unwrap();
        let b = top_k(
            &log.two_hop().query,
            log.db(),
            log.two_hop().sum_ranking(),
            50,
        )
        .unwrap();
        assert_eq!(a.len(), b.len());
        // The two schemes almost surely rank differently.
        assert_ne!(a, b);
    }
}
