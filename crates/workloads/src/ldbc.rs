//! LDBC-SNB-like UCQ workloads for the scalability experiment (Figure 9).
//!
//! The paper runs the multi-source variants of LDBC interactive queries
//! Q3, Q10 and Q11 — neighbourhood analyses containing `UNION` and
//! `ORDER BY` — at scale factors 10–50. The synthetic stand-ins below keep
//! the same *shape*: unions of acyclic join-project branches over the
//! person-knows-person graph, forum memberships, likes and post authorship,
//! projecting person pairs ranked by the sum of person weights.

use crate::spec::UnionSpec;
use re_datagen::{LdbcConfig, LdbcDataset};
use re_query::{QueryBuilder, UnionQuery};
use re_ranking::{Weight, WeightAssignment};
use re_storage::{Database, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// The LDBC-like workload: the generated database plus the three UCQ
/// queries.
#[derive(Clone, Debug)]
pub struct LdbcWorkload {
    db: Database,
    person_weights: Arc<HashMap<Value, Weight>>,
    scale_factor: usize,
}

impl LdbcWorkload {
    /// Generate the workload for a scale factor.
    pub fn generate(scale_factor: usize, seed: u64) -> Self {
        let ds = LdbcDataset::generate(LdbcConfig::new(scale_factor, seed));
        let mut db = Database::new();
        db.set_relation(ds.knows.clone());
        db.set_relation(ds.post_creator.clone());
        db.set_relation(ds.likes.clone());
        db.set_relation(ds.forum_member.clone());
        LdbcWorkload {
            db,
            person_weights: Arc::new(ds.person_weights.clone()),
            scale_factor,
        }
    }

    /// The database instance.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The scale factor the instance was generated for.
    pub fn scale_factor(&self) -> usize {
        self.scale_factor
    }

    fn person_pair_weights(&self) -> WeightAssignment {
        WeightAssignment::zero()
            .with_shared_table("p", Arc::clone(&self.person_weights))
            .with_shared_table("f", Arc::clone(&self.person_weights))
    }

    /// Q3-like: persons reachable within one or two `knows` steps, ranked by
    /// the pair's weight sum.
    pub fn q3(&self) -> UnionSpec {
        let direct = QueryBuilder::new()
            .atom("K", "Knows", ["p", "f"])
            .project(["p", "f"])
            .build()
            .expect("valid Q3 branch");
        let two_step = QueryBuilder::new()
            .atom("K1", "Knows", ["p", "m"])
            .atom("K2", "Knows", ["m", "f"])
            .project(["p", "f"])
            .build()
            .expect("valid Q3 branch");
        UnionSpec::new(
            "LDBC-Q3",
            UnionQuery::new(vec![direct, two_step]).expect("compatible branches"),
            self.person_pair_weights(),
        )
    }

    /// Q10-like: friends-of-friends united with co-members of a forum.
    pub fn q10(&self) -> UnionSpec {
        let fof = QueryBuilder::new()
            .atom("K1", "Knows", ["p", "m"])
            .atom("K2", "Knows", ["m", "f"])
            .project(["p", "f"])
            .build()
            .expect("valid Q10 branch");
        let co_members = QueryBuilder::new()
            .atom("F1", "ForumMember", ["g", "p"])
            .atom("F2", "ForumMember", ["g", "f"])
            .project(["p", "f"])
            .build()
            .expect("valid Q10 branch");
        UnionSpec::new(
            "LDBC-Q10",
            UnionQuery::new(vec![fof, co_members]).expect("compatible branches"),
            self.person_pair_weights(),
        )
    }

    /// Q11-like: persons who liked the same post, united with persons who
    /// liked a post the other created.
    pub fn q11(&self) -> UnionSpec {
        let co_likers = QueryBuilder::new()
            .atom("L1", "Likes", ["p", "post"])
            .atom("L2", "Likes", ["f", "post"])
            .project(["p", "f"])
            .build()
            .expect("valid Q11 branch");
        let liked_creator = QueryBuilder::new()
            .atom("L", "Likes", ["p", "post"])
            .atom("C", "PostCreator", ["post", "f"])
            .project(["p", "f"])
            .build()
            .expect("valid Q11 branch");
        UnionSpec::new(
            "LDBC-Q11",
            UnionQuery::new(vec![co_likers, liked_creator]).expect("compatible branches"),
            self.person_pair_weights(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankedenum_core::UnionEnumerator;
    use re_ranking::Ranking;

    #[test]
    fn queries_run_and_are_ranked() {
        let w = LdbcWorkload::generate(1, 9);
        for spec in [w.q3(), w.q10(), w.q11()] {
            let ranking = spec.sum_ranking();
            let e = UnionEnumerator::new(&spec.query, w.db(), ranking.clone()).unwrap();
            let top: Vec<_> = e.take(20).collect();
            assert!(!top.is_empty(), "{} returned nothing", spec.name);
            let keys: Vec<_> = top
                .iter()
                .map(|t| ranking.key_of(spec.query.projection(), t))
                .collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "{} unsorted",
                spec.name
            );
            // no duplicates
            let set: std::collections::HashSet<_> = top.iter().cloned().collect();
            assert_eq!(set.len(), top.len(), "{} emitted duplicates", spec.name);
        }
    }

    #[test]
    fn database_grows_with_scale_factor() {
        let s1 = LdbcWorkload::generate(1, 4);
        let s3 = LdbcWorkload::generate(3, 4);
        assert!(s3.db().size() > 2 * s1.db().size());
        assert_eq!(s3.scale_factor(), 3);
    }
}
