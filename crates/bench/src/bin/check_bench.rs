//! CI perf guard over `BENCH_lexi.json` and `BENCH_enum.json`.
//!
//! Compares the freshly written bench outputs against the committed
//! baselines (`BENCH_lexi_baseline.json`, `BENCH_enum_baseline.json`) and
//! fails on regressions. Absolute milliseconds vary with the machine —
//! this container pins the process to a single core — so every guard
//! compares machine-invariant **ratios** of engines run on the same data
//! in the same process. Checks:
//!
//! 1. **Ordering** — the index-backed lexi engine must not be slower than
//!    the general algorithm on DBLP2hop at k = 1000 (the PR 1 inversion
//!    must stay closed; a 10% measurement-noise allowance applies).
//! 2. **Lexi ratio regression** — per query, the fresh `new/general`
//!    ratio may exceed the baseline ratio by at most 25%.
//! 3. **Small-k crossover** — lazy index builds must keep the lexi engine
//!    no slower than its pre-index ancestor at k = 10 (the PR 4 caveat
//!    must stay closed; 15% noise allowance).
//! 4. **Frontier memory** — per query at k = 1000, the arena kernel must
//!    strictly undercut the owned-tuple engine's frontier bytes, by ≥2×
//!    on DBLP3hop, with time-to-1000 within 1.05× of the old engine; and
//!    the fresh `new/old` time and bytes ratios may exceed the committed
//!    baseline ratios by at most 25%.
//! 5. **Cyclic preprocessing cliff** — `BENCH_preprocess.json`'s 6-cycle
//!    time-to-first-answer under the new pipeline (cost-based GHD + the
//!    worst-case-optimal kernel) must undercut the old pipeline (Figure-2
//!    template + hash-join cascade, measured in the same process) by
//!    ≥10×, and the fresh `new/old` ratio may exceed the committed
//!    `BENCH_preprocess_baseline.json` ratio by at most 25%.
//! 6. **Instrumentation overhead** — the fresh `BENCH_enum.json` must
//!    carry `"instrumented":true`, i.e. the new-engine times of check 4
//!    were measured through the `re_obs` `InstrumentedStream` wrapper
//!    (per-`next()` wall-clock timing, global delay/TTFA histograms).
//!    Check 4's time gates then double as the observability overhead
//!    gate: instrumented ratios must stay within the same 25% drift
//!    guard against the (equally instrumented) committed baseline.
//! 7. **Server transport** — `BENCH_server.json`'s same-run three-way
//!    comparison (thread-per-connection JSON vs reactor JSON vs reactor
//!    binary, 64 paced clients on 8 workers) must show the reactor
//!    sustaining ≥3× the thread front-end's sessions/sec with a
//!    coordinated-omission-corrected FETCH p99 no worse than the thread
//!    front-end's, and the binary protocol's p50 no worse than
//!    JSON-lines' in the time-paired codec probe (alternating batches
//!    against one server, so environment noise cancels out of the
//!    ratio); the reactor/thread speedup and paired binary/JSON ratio
//!    may drift at most 25% past `BENCH_server_baseline.json`.

use std::path::Path;
use std::process::exit;

/// Tolerated relative regression of a guarded ratio against its baseline.
const TOLERANCE: f64 = 0.25;
/// Noise allowance on the ordering check (single pinned core).
const ORDERING_SLACK: f64 = 0.10;
/// Noise allowance on the lexi small-k crossover check.
const SMALL_K_SLACK: f64 = 0.15;
/// The arena engine's time-to-1000 must stay within this factor of the
/// owned-tuple engine's (the PR acceptance bound).
const ENUM_TIME_BOUND: f64 = 1.05;
/// The new cyclic-preprocessing pipeline's 6-cycle time-to-first must be
/// at most this fraction of the old pipeline's (the >= 10x acceptance
/// bound of the worst-case-optimal bag-materialisation PR).
const TTF_RATIO_BOUND: f64 = 0.10;
/// The reactor front-end must sustain at least this many times the
/// thread-per-connection front-end's sessions/sec under the paced
/// 64-client load (the event-driven-server PR acceptance bound).
const SERVER_SPEEDUP_BOUND: f64 = 3.0;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    query: String,
    k: u64,
    old_ms: f64,
    new_ms: f64,
    general_ms: f64,
}

/// Extract the next `"field":value` number after `from` in `s`.
fn field_f64(obj: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(obj: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = obj.find(&needle)? + needle.len();
    let rest = &obj[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse the flat schema `lexi_vs_general` writes. Deliberately minimal —
/// the workspace has no serde, and the file is machine-written with a
/// fixed shape.
fn parse(content: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    let Some(arr_start) = content.find("\"entries\":[") else {
        return entries;
    };
    let mut rest = &content[arr_start..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let (Some(query), Some(k), Some(old_ms), Some(new_ms), Some(general_ms)) = (
            field_str(obj, "query"),
            field_f64(obj, "k"),
            field_f64(obj, "old_ms"),
            field_f64(obj, "new_ms"),
            field_f64(obj, "general_ms"),
        ) {
            entries.push(Entry {
                query,
                k: k as u64,
                old_ms,
                new_ms,
                general_ms,
            });
        }
        rest = &rest[open + close + 1..];
    }
    entries
}

fn load(path: &Path) -> Vec<Entry> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench: cannot read {}: {e}", path.display());
            exit(1);
        }
    };
    let entries = parse(&content);
    if entries.is_empty() {
        eprintln!("check_bench: no entries parsed from {}", path.display());
        exit(1);
    }
    entries
}

fn at_k1000<'a>(entries: &'a [Entry], query: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.query == query && e.k == 1_000)
}

/// One entry of the `enum_frontier` schema (old vs. new engine, time and
/// frontier bytes).
#[derive(Debug, Clone, PartialEq)]
struct EnumEntry {
    query: String,
    k: u64,
    old_ms: f64,
    new_ms: f64,
    old_bytes: f64,
    new_bytes: f64,
}

/// Parse the flat schema `enum_frontier` writes.
fn parse_enum(content: &str) -> Vec<EnumEntry> {
    let mut entries = Vec::new();
    let Some(arr_start) = content.find("\"entries\":[") else {
        return entries;
    };
    let mut rest = &content[arr_start..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let (
            Some(query),
            Some(k),
            Some(old_ms),
            Some(new_ms),
            Some(old_bytes),
            Some(new_bytes),
        ) = (
            field_str(obj, "query"),
            field_f64(obj, "k"),
            field_f64(obj, "old_ms"),
            field_f64(obj, "new_ms"),
            field_f64(obj, "old_bytes"),
            field_f64(obj, "new_bytes"),
        ) {
            entries.push(EnumEntry {
                query,
                k: k as u64,
                old_ms,
                new_ms,
                old_bytes,
                new_bytes,
            });
        }
        rest = &rest[open + close + 1..];
    }
    entries
}

fn load_enum(path: &Path) -> Vec<EnumEntry> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench: cannot read {}: {e}", path.display());
            exit(1);
        }
    };
    let entries = parse_enum(&content);
    if entries.is_empty() {
        eprintln!("check_bench: no entries parsed from {}", path.display());
        exit(1);
    }
    entries
}

fn enum_at_k1000<'a>(entries: &'a [EnumEntry], query: &str) -> Option<&'a EnumEntry> {
    entries.iter().find(|e| e.query == query && e.k == 1_000)
}

/// The frontier-kernel gates over `BENCH_enum.json` (check 4 in the
/// module docs). Returns human-readable failures.
fn check_enum(fresh: &[EnumEntry], baseline: &[EnumEntry]) -> Vec<String> {
    let mut failures = Vec::new();
    for query in ["DBLP2hop", "DBLP3hop", "DBLP6cycle"] {
        let before = failures.len();
        let Some(e) = enum_at_k1000(fresh, query) else {
            failures.push(format!("fresh BENCH_enum.json has no {query} k=1000 entry"));
            continue;
        };
        if e.new_bytes >= e.old_bytes {
            failures.push(format!(
                "{query} k=1000: arena frontier ({} B) does not undercut the \
                 owned-tuple frontier ({} B)",
                e.new_bytes, e.old_bytes
            ));
        }
        if query == "DBLP3hop" && 2.0 * e.new_bytes > e.old_bytes {
            failures.push(format!(
                "{query} k=1000: arena frontier reduction {:.2}x below the 2x target",
                e.old_bytes / e.new_bytes
            ));
        }
        if e.new_ms > e.old_ms * ENUM_TIME_BOUND {
            failures.push(format!(
                "{query} k=1000: arena time-to-1000 {:.2} ms exceeds {:.0}% of the \
                 old engine's {:.2} ms",
                e.new_ms,
                ENUM_TIME_BOUND * 100.0,
                e.old_ms
            ));
        }
        if let Some(base) = enum_at_k1000(baseline, query) {
            let time_ratio = e.new_ms / e.old_ms;
            let base_time_ratio = base.new_ms / base.old_ms;
            if time_ratio > base_time_ratio * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "{query} k=1000: new/old time ratio regressed {base_time_ratio:.3} -> \
                     {time_ratio:.3} (> {:.0}% tolerance)",
                    TOLERANCE * 100.0
                ));
            }
            let bytes_ratio = e.new_bytes / e.old_bytes;
            let base_bytes_ratio = base.new_bytes / base.old_bytes;
            if bytes_ratio > base_bytes_ratio * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "{query} k=1000: new/old bytes ratio regressed {base_bytes_ratio:.3} -> \
                     {bytes_ratio:.3} (> {:.0}% tolerance)",
                    TOLERANCE * 100.0
                ));
            }
        } else {
            failures.push(format!(
                "{query} k=1000 present in fresh run but missing from enum baseline"
            ));
        }
        if failures.len() == before {
            println!(
                "ok: {query} k=1000 arena {:.2} ms / {} B vs old {:.2} ms / {} B \
                 ({:.2}x less frontier memory)",
                e.new_ms,
                e.new_bytes,
                e.old_ms,
                e.old_bytes,
                e.old_bytes / e.new_bytes
            );
        }
    }
    failures
}

/// The 6-cycle time-to-first pair `preprocess` writes under `"ttf"`.
#[derive(Debug, Clone, PartialEq)]
struct Ttf {
    old_ms: f64,
    new_ms: f64,
}

/// Parse the `"ttf":{...}` object of the `preprocess` schema.
fn parse_ttf(content: &str) -> Option<Ttf> {
    let start = content.find("\"ttf\":{")?;
    let obj = &content[start..];
    let obj = &obj[..obj.find('}')? + 1];
    Some(Ttf {
        old_ms: field_f64(obj, "old_ms")?,
        new_ms: field_f64(obj, "new_ms")?,
    })
}

fn load_ttf(path: &Path) -> Ttf {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench: cannot read {}: {e}", path.display());
            exit(1);
        }
    };
    match parse_ttf(&content) {
        Some(ttf) => ttf,
        None => {
            eprintln!("check_bench: no ttf object parsed from {}", path.display());
            exit(1);
        }
    }
}

/// The cyclic-preprocessing gates over `BENCH_preprocess.json` (check 5
/// in the module docs). Returns human-readable failures.
fn check_ttf(fresh: &Ttf, baseline: &Ttf) -> Vec<String> {
    let mut failures = Vec::new();
    let ratio = fresh.new_ms / fresh.old_ms;
    if ratio > TTF_RATIO_BOUND {
        failures.push(format!(
            "6-cycle time-to-first: new pipeline {:.1} ms is only {:.1}x faster than \
             the old pipeline's {:.1} ms (the PR demands >= {:.0}x)",
            fresh.new_ms,
            1.0 / ratio,
            fresh.old_ms,
            1.0 / TTF_RATIO_BOUND
        ));
    }
    let base_ratio = baseline.new_ms / baseline.old_ms;
    if ratio > base_ratio * (1.0 + TOLERANCE) {
        failures.push(format!(
            "6-cycle time-to-first: new/old ratio regressed {base_ratio:.4} -> {ratio:.4} \
             (> {:.0}% tolerance)",
            TOLERANCE * 100.0
        ));
    }
    if failures.is_empty() {
        println!(
            "ok: 6-cycle time-to-first new {:.1} ms vs old {:.1} ms ({:.1}x, \
             baseline {:.1}x, tolerance {:.0}%)",
            fresh.new_ms,
            fresh.old_ms,
            1.0 / ratio,
            1.0 / base_ratio,
            TOLERANCE * 100.0
        );
    }
    failures
}

/// Check 6: the overhead gate proves nothing unless the enum bench
/// actually ran through the instrumentation wrapper.
fn check_instrumented(content: &str) -> Option<String> {
    if content.contains("\"instrumented\":true") {
        println!(
            "ok: BENCH_enum.json measured through InstrumentedStream — the check-4 \
             time gates double as the instrumentation-overhead gate"
        );
        None
    } else {
        Some(
            "fresh BENCH_enum.json lacks \"instrumented\":true — the enum bench ran \
             without the wall-clock instrumentation wrapper, so the overhead gate \
             proved nothing"
                .into(),
        )
    }
}

/// One mode of the `server_load` schema (thread_json / reactor_json /
/// reactor_binary).
#[derive(Debug, Clone, PartialEq)]
struct ServerMode {
    mode: String,
    sessions_per_sec: f64,
    corrected_p99_us: f64,
}

/// The full `server_load` schema: the three storm modes plus the
/// time-paired codec probe's p50s (the binary-vs-JSON gate signal — the
/// probe alternates protocols against one server so environment drift
/// cancels out of the ratio).
#[derive(Debug, Clone, PartialEq)]
struct ServerReport {
    modes: Vec<ServerMode>,
    paired_json_p50_us: f64,
    paired_binary_p50_us: f64,
}

/// Parse the `server_load` schema: the top-level paired-probe fields and
/// the `"modes":[...]` array.
fn parse_server(content: &str) -> Option<ServerReport> {
    let paired_json_p50_us = field_f64(content, "paired_json_p50_us")?;
    let paired_binary_p50_us = field_f64(content, "paired_binary_p50_us")?;
    let arr_start = content.find("\"modes\":[")?;
    let mut modes = Vec::new();
    let mut rest = &content[arr_start..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let (Some(mode), Some(sessions_per_sec), Some(corrected_p99_us)) = (
            field_str(obj, "mode"),
            field_f64(obj, "sessions_per_sec"),
            field_f64(obj, "corrected_p99_us"),
        ) {
            modes.push(ServerMode {
                mode,
                sessions_per_sec,
                corrected_p99_us,
            });
        }
        rest = &rest[open + close + 1..];
    }
    if modes.is_empty() {
        return None;
    }
    Some(ServerReport {
        modes,
        paired_json_p50_us,
        paired_binary_p50_us,
    })
}

fn load_server(path: &Path) -> ServerReport {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench: cannot read {}: {e}", path.display());
            exit(1);
        }
    };
    match parse_server(&content) {
        Some(report) => report,
        None => {
            eprintln!(
                "check_bench: cannot parse the server_load schema from {}",
                path.display()
            );
            exit(1);
        }
    }
}

fn server_mode<'a>(report: &'a ServerReport, name: &str) -> Option<&'a ServerMode> {
    report.modes.iter().find(|m| m.mode == name)
}

/// The server-transport gates over `BENCH_server.json` (check 7 in the
/// module docs). Returns human-readable failures.
fn check_server(fresh: &ServerReport, baseline: &ServerReport) -> Vec<String> {
    let mut failures = Vec::new();
    let (Some(thread), Some(reactor), Some(_binary)) = (
        server_mode(fresh, "thread_json"),
        server_mode(fresh, "reactor_json"),
        server_mode(fresh, "reactor_binary"),
    ) else {
        failures.push(
            "fresh BENCH_server.json is missing one of thread_json / reactor_json / \
             reactor_binary"
                .into(),
        );
        return failures;
    };

    let speedup = reactor.sessions_per_sec / thread.sessions_per_sec;
    if speedup < SERVER_SPEEDUP_BOUND {
        failures.push(format!(
            "server load: reactor sustains only {speedup:.2}x the thread front-end's \
             sessions/sec ({:.1} vs {:.1}; the PR demands >= {SERVER_SPEEDUP_BOUND:.0}x)",
            reactor.sessions_per_sec, thread.sessions_per_sec
        ));
    }
    if reactor.corrected_p99_us > thread.corrected_p99_us {
        failures.push(format!(
            "server load: reactor corrected FETCH p99 {:.0} us exceeds the thread \
             front-end's {:.0} us",
            reactor.corrected_p99_us, thread.corrected_p99_us
        ));
    }
    if fresh.paired_binary_p50_us > fresh.paired_json_p50_us {
        failures.push(format!(
            "server load: binary paired FETCH p50 {:.0} us exceeds JSON-lines' {:.0} us",
            fresh.paired_binary_p50_us, fresh.paired_json_p50_us
        ));
    }

    match (
        server_mode(baseline, "thread_json"),
        server_mode(baseline, "reactor_json"),
    ) {
        (Some(base_thread), Some(base_reactor)) => {
            let base_speedup = base_reactor.sessions_per_sec / base_thread.sessions_per_sec;
            if speedup < base_speedup * (1.0 - TOLERANCE) {
                failures.push(format!(
                    "server load: reactor/thread speedup regressed {base_speedup:.2}x -> \
                     {speedup:.2}x (> {:.0}% tolerance)",
                    TOLERANCE * 100.0
                ));
            }
            let paired_ratio = fresh.paired_binary_p50_us / fresh.paired_json_p50_us;
            let base_paired_ratio = baseline.paired_binary_p50_us / baseline.paired_json_p50_us;
            if paired_ratio > base_paired_ratio * (1.0 + TOLERANCE) {
                failures.push(format!(
                    "server load: binary/json paired p50 ratio regressed \
                     {base_paired_ratio:.3} -> {paired_ratio:.3} (> {:.0}% tolerance)",
                    TOLERANCE * 100.0
                ));
            }
        }
        _ => failures.push("server baseline is missing one of thread_json / reactor_json".into()),
    }

    if failures.is_empty() {
        println!(
            "ok: server load reactor {:.1} sessions/s vs thread {:.1} ({speedup:.2}x), \
             corrected p99 {:.0} vs {:.0} us, binary paired p50 {:.0} vs json {:.0} us",
            reactor.sessions_per_sec,
            thread.sessions_per_sec,
            reactor.corrected_p99_us,
            thread.corrected_p99_us,
            fresh.paired_binary_p50_us,
            fresh.paired_json_p50_us
        );
    }
    failures
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let fresh = load(&root.join("BENCH_lexi.json"));
    let baseline = load(&root.join("BENCH_lexi_baseline.json"));

    let mut failures: Vec<String> = Vec::new();

    // Check 1: the paper's ordering holds on DBLP2hop at k = 1000.
    match at_k1000(&fresh, "DBLP2hop") {
        None => failures.push("fresh BENCH_lexi.json has no DBLP2hop k=1000 entry".into()),
        Some(e) => {
            if e.new_ms > e.general_ms * (1.0 + ORDERING_SLACK) {
                failures.push(format!(
                    "DBLP2hop k=1000: lexi ({:.2} ms) slower than general ({:.2} ms) — \
                     the PR 1 inversion is back",
                    e.new_ms, e.general_ms
                ));
            } else {
                println!(
                    "ok: DBLP2hop k=1000 lexi {:.2} ms <= general {:.2} ms ({:.2}x), \
                     old engine {:.2} ms ({:.2}x vs new)",
                    e.new_ms,
                    e.general_ms,
                    e.general_ms / e.new_ms,
                    e.old_ms,
                    e.old_ms / e.new_ms
                );
            }
        }
    }

    // Check 3: the lazy-index rebuild must keep the lexi engine ahead of
    // its pre-index ancestor at small k (the PR 4 caveat stays closed).
    for e in fresh.iter().filter(|e| e.k == 10) {
        if e.new_ms > e.old_ms * (1.0 + SMALL_K_SLACK) {
            failures.push(format!(
                "{} k=10: lexi ({:.2} ms) slower than the pre-index engine ({:.2} ms) — \
                 the PR 4 small-k caveat is back",
                e.query, e.new_ms, e.old_ms
            ));
        } else {
            println!(
                "ok: {} k=10 lexi {:.2} ms <= old engine {:.2} ms ({:.2}x)",
                e.query,
                e.new_ms,
                e.old_ms,
                e.old_ms / e.new_ms
            );
        }
    }

    // Check 2: per-query ratio regression against the committed baseline.
    for base in baseline.iter().filter(|e| e.k == 1_000) {
        let Some(now) = at_k1000(&fresh, &base.query) else {
            failures.push(format!(
                "{} k=1000 present in baseline but missing from fresh run",
                base.query
            ));
            continue;
        };
        let base_ratio = base.new_ms / base.general_ms;
        let now_ratio = now.new_ms / now.general_ms;
        if now_ratio > base_ratio * (1.0 + TOLERANCE) {
            failures.push(format!(
                "{} k=1000: lexi/general ratio regressed {:.3} -> {:.3} (> {:.0}% tolerance)",
                base.query,
                base_ratio,
                now_ratio,
                TOLERANCE * 100.0
            ));
        } else {
            println!(
                "ok: {} k=1000 lexi/general ratio {:.3} (baseline {:.3}, tolerance {:.0}%)",
                base.query,
                now_ratio,
                base_ratio,
                TOLERANCE * 100.0
            );
        }
    }

    // Check 4: the frontier-kernel gates over BENCH_enum.json.
    let enum_fresh = load_enum(&root.join("BENCH_enum.json"));
    let enum_baseline = load_enum(&root.join("BENCH_enum_baseline.json"));
    failures.extend(check_enum(&enum_fresh, &enum_baseline));

    // Check 5: the cyclic-preprocessing cliff stays dead (>= 10x 6-cycle
    // time-to-first under the cost-based + worst-case-optimal pipeline).
    let ttf_fresh = load_ttf(&root.join("BENCH_preprocess.json"));
    let ttf_baseline = load_ttf(&root.join("BENCH_preprocess_baseline.json"));
    failures.extend(check_ttf(&ttf_fresh, &ttf_baseline));

    // Check 6: the fresh enum numbers must come from an instrumented run.
    if let Ok(content) = std::fs::read_to_string(root.join("BENCH_enum.json")) {
        failures.extend(check_instrumented(&content));
    }

    // Check 7: the event-driven server front-end beats thread-per-conn
    // on sessions/sec and tail latency, and binary framing beats JSON.
    let server_fresh = load_server(&root.join("BENCH_server.json"));
    let server_baseline = load_server(&root.join("BENCH_server_baseline.json"));
    failures.extend(check_server(&server_fresh, &server_baseline));

    if failures.is_empty() {
        println!("check_bench: all perf guards passed");
    } else {
        for f in &failures {
            eprintln!("check_bench FAILURE: {f}");
        }
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"edges\":5000,\"machine_threads\":1,\"entries\":[\
        {\"query\":\"DBLP2hop\",\"k\":10,\"old_ms\":1.5,\"new_ms\":3.0,\"general_ms\":7.0},\
        {\"query\":\"DBLP2hop\",\"k\":1000,\"old_ms\":20.0,\"new_ms\":2.7,\"general_ms\":7.1}]}";

    #[test]
    fn parses_the_flat_schema() {
        let entries = parse(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].query, "DBLP2hop");
        assert_eq!(entries[1].k, 1000);
        assert_eq!(entries[1].old_ms, 20.0);
        assert_eq!(entries[1].new_ms, 2.7);
        assert_eq!(entries[1].general_ms, 7.1);
        assert_eq!(at_k1000(&entries, "DBLP2hop"), Some(&entries[1]));
        assert_eq!(at_k1000(&entries, "DBLP3hop"), None);
    }

    const ENUM_SAMPLE: &str = "{\"edges\":5000,\"cycle_edges\":2200,\"entries\":[\
        {\"query\":\"DBLP3hop\",\"k\":1000,\"old_ms\":18.4,\"new_ms\":10.7,\
         \"old_bytes\":3298276,\"new_bytes\":1153720,\"new_peak_bytes\":1065672}]}";

    #[test]
    fn parses_the_enum_schema() {
        let entries = parse_enum(ENUM_SAMPLE);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].query, "DBLP3hop");
        assert_eq!(entries[0].old_bytes, 3298276.0);
        assert_eq!(entries[0].new_bytes, 1153720.0);
        assert_eq!(enum_at_k1000(&entries, "DBLP3hop"), Some(&entries[0]));
        assert!(enum_at_k1000(&entries, "DBLP2hop").is_none());
    }

    #[test]
    fn enum_gates_fire_on_regressions() {
        let good = parse_enum(ENUM_SAMPLE);
        // Identical fresh and baseline entries: the 2hop/6cycle entries are
        // missing, so only those failures appear — the 3hop gates pass.
        let failures = check_enum(&good, &good);
        assert_eq!(failures.len(), 2, "missing 2hop and 6cycle: {failures:?}");
        // A fresh run whose arena frontier grew past the old engine's must
        // fail the strict-undercut and 2x gates.
        let mut bloated = good.clone();
        bloated[0].new_bytes = bloated[0].old_bytes + 1.0;
        let failures = check_enum(&bloated, &good);
        assert!(
            failures.iter().any(|f| f.contains("does not undercut")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("below the 2x target")),
            "{failures:?}"
        );
        // A slowdown past the 1.05x bound must fail the time gate.
        let mut slow = good.clone();
        slow[0].new_ms = slow[0].old_ms * 1.2;
        let failures = check_enum(&slow, &good);
        assert!(
            failures.iter().any(|f| f.contains("exceeds")),
            "{failures:?}"
        );
    }

    const PREPROCESS_SAMPLE: &str = "{\"workload\":\"DBLP6cycle\",\"edges\":2200,\
        \"plan\":\"cycle-split(0,3)\",\"bag_sizes\":[265048, 265048],\
        \"serial_ms\":296.696,\"runs\":[{\"threads\":1,\"ms\":362.073,\"speedup\":0.819}],\
        \"ttf\":{\"old_ms\":3606.578,\"new_ms\":295.608,\"speedup\":12.201}}";

    #[test]
    fn parses_the_ttf_object() {
        let ttf = parse_ttf(PREPROCESS_SAMPLE).unwrap();
        assert_eq!(ttf.old_ms, 3606.578);
        assert_eq!(ttf.new_ms, 295.608);
        assert!(parse_ttf("{\"runs\":[]}").is_none());
    }

    #[test]
    fn ttf_gates_fire_on_regressions() {
        let good = parse_ttf(PREPROCESS_SAMPLE).unwrap();
        assert!(check_ttf(&good, &good).is_empty());
        // Losing the 10x speedup must fail regardless of the baseline.
        let slow = Ttf {
            old_ms: good.old_ms,
            new_ms: good.old_ms / 5.0,
        };
        let failures = check_ttf(&slow, &slow);
        assert!(
            failures.iter().any(|f| f.contains("demands >= 10x")),
            "{failures:?}"
        );
        // Drifting >25% past the committed ratio must fail even while the
        // 10x bound still holds.
        let drifted = Ttf {
            old_ms: good.old_ms,
            new_ms: good.new_ms * 1.5,
        };
        let failures = check_ttf(&drifted, &good);
        assert!(
            failures.iter().any(|f| f.contains("ratio regressed")),
            "{failures:?}"
        );
    }

    #[test]
    fn instrumented_flag_is_required() {
        assert!(check_instrumented("{\"instrumented\":true,\"entries\":[]}").is_none());
        let failure = check_instrumented("{\"entries\":[]}").unwrap();
        assert!(failure.contains("instrumented"), "{failure}");
    }

    const SERVER_SAMPLE: &str = "{\"clients\":64,\"workers\":8,\
        \"paired_json_p50_us\":120.0,\"paired_binary_p50_us\":85.0,\"modes\":[\
        {\"mode\":\"thread_json\",\"sessions_per_sec\":32.4,\"solo_p50_us\":119.0,\
         \"service_p50_us\":243.0,\"corrected_p99_us\":3461860.0,\"fetches\":1024},\
        {\"mode\":\"reactor_json\",\"sessions_per_sec\":222.9,\"solo_p50_us\":128.0,\
         \"service_p50_us\":406.0,\"corrected_p99_us\":60957.0,\"fetches\":1024},\
        {\"mode\":\"reactor_binary\",\"sessions_per_sec\":227.7,\"solo_p50_us\":100.0,\
         \"service_p50_us\":428.0,\"corrected_p99_us\":32710.0,\"fetches\":1024}]}";

    #[test]
    fn parses_the_server_schema() {
        let report = parse_server(SERVER_SAMPLE).unwrap();
        assert_eq!(report.modes.len(), 3);
        assert_eq!(report.paired_json_p50_us, 120.0);
        assert_eq!(report.paired_binary_p50_us, 85.0);
        let reactor = server_mode(&report, "reactor_json").unwrap();
        assert_eq!(reactor.sessions_per_sec, 222.9);
        assert_eq!(reactor.corrected_p99_us, 60957.0);
        assert!(server_mode(&report, "reactor_quic").is_none());
        assert!(parse_server("{\"entries\":[]}").is_none());
    }

    #[test]
    fn server_gates_fire_on_regressions() {
        let good = parse_server(SERVER_SAMPLE).unwrap();
        assert!(check_server(&good, &good).is_empty());
        // Losing the 3x sessions/sec speedup must fail regardless of the
        // baseline.
        let mut slow = good.clone();
        slow.modes[1].sessions_per_sec = slow.modes[0].sessions_per_sec * 2.0;
        let failures = check_server(&slow, &slow);
        assert!(
            failures.iter().any(|f| f.contains("demands >= 3x")),
            "{failures:?}"
        );
        // A reactor tail worse than the thread front-end's must fail.
        let mut tail = good.clone();
        tail.modes[1].corrected_p99_us = tail.modes[0].corrected_p99_us * 2.0;
        let failures = check_server(&tail, &good);
        assert!(
            failures.iter().any(|f| f.contains("corrected FETCH p99")),
            "{failures:?}"
        );
        // Binary losing to JSON on the paired probe must fail.
        let mut codec = good.clone();
        codec.paired_binary_p50_us = codec.paired_json_p50_us + 1.0;
        let failures = check_server(&codec, &good);
        assert!(
            failures.iter().any(|f| f.contains("paired FETCH p50")),
            "{failures:?}"
        );
        // Drifting >25% past the committed speedup must fail even while
        // the 3x bound still holds.
        let mut drifted = good.clone();
        drifted.modes[1].sessions_per_sec = drifted.modes[0].sessions_per_sec * 4.0;
        let failures = check_server(&drifted, &good);
        assert!(
            failures.iter().any(|f| f.contains("speedup regressed")),
            "{failures:?}"
        );
        // Losing >25% of the paired codec advantage must fail even while
        // binary still beats JSON outright.
        let mut eroded = good.clone();
        eroded.paired_binary_p50_us = 110.0; // ratio 0.917 vs baseline 0.708
        let failures = check_server(&eroded, &good);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("paired p50 ratio regressed")),
            "{failures:?}"
        );
        // A missing mode is a hard failure.
        let mut missing = good.clone();
        missing.modes.truncate(2);
        let failures = check_server(&missing, &good);
        assert!(
            failures.iter().any(|f| f.contains("missing one of")),
            "{failures:?}"
        );
    }

    #[test]
    fn field_extractors_handle_missing_fields() {
        assert_eq!(field_f64("{\"a\":1.25}", "a"), Some(1.25));
        assert_eq!(field_f64("{\"a\":1.25}", "b"), None);
        assert_eq!(field_str("{\"q\":\"X\"}", "q"), Some("X".into()));
        assert_eq!(field_str("{\"q\":3}", "q"), None);
        assert!(parse("{}").is_empty());
    }
}
