//! Hash indexes over relations.
//!
//! The enumeration algorithms rely on constant-time lookups of tuples by a
//! subset of their attributes (the *anchor* attributes of a join-tree node)
//! and on degree information (how many tuples share a key) for the
//! heavy/light split of the star-query algorithm.

use crate::attr::Attr;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// A hash index from key tuples (values of a column subset) to the row ids
/// of matching tuples.
#[derive(Clone, Debug)]
pub struct HashIndex {
    key_attrs: Vec<Attr>,
    key_positions: Vec<usize>,
    map: HashMap<Tuple, Vec<u32>>,
}

impl HashIndex {
    /// Build an index over `relation` keyed on `key_attrs`.
    pub fn build(relation: &Relation, key_attrs: &[Attr]) -> Result<Self, StorageError> {
        let key_positions = relation.positions(key_attrs)?;
        let mut map: HashMap<Tuple, Vec<u32>> = HashMap::with_capacity(relation.len());
        for (i, t) in relation.iter().enumerate() {
            let key: Tuple = key_positions.iter().map(|&p| t[p]).collect();
            map.entry(key).or_default().push(i as u32);
        }
        Ok(HashIndex {
            key_attrs: key_attrs.to_vec(),
            key_positions,
            map,
        })
    }

    /// The attributes this index is keyed on.
    pub fn key_attrs(&self) -> &[Attr] {
        &self.key_attrs
    }

    /// Positions of the key attributes in the indexed relation.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Row ids matching a key, or an empty slice.
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, row ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Vec<u32>)> + '_ {
        self.map.iter()
    }

    /// Extract the key of an arbitrary tuple of the indexed relation.
    pub fn key_of(&self, tuple: &[Value]) -> Tuple {
        self.key_positions.iter().map(|&p| tuple[p]).collect()
    }
}

/// Degree statistics of one attribute of a relation: for each value, how
/// many tuples carry it. Used by the star-query heavy/light split
/// (Algorithm 4) and by the bounded-degree delay analysis (Appendix D).
#[derive(Clone, Debug)]
pub struct DegreeIndex {
    attr: Attr,
    counts: HashMap<Value, u32>,
    max_degree: u32,
}

impl DegreeIndex {
    /// Build degree statistics for `attr` over `relation`.
    pub fn build(relation: &Relation, attr: &Attr) -> Result<Self, StorageError> {
        let p = relation
            .position(attr)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: relation.name().to_string(),
                attribute: attr.as_str().to_string(),
            })?;
        let mut counts: HashMap<Value, u32> = HashMap::new();
        for t in relation.iter() {
            *counts.entry(t[p]).or_insert(0) += 1;
        }
        let max_degree = counts.values().copied().max().unwrap_or(0);
        Ok(DegreeIndex {
            attr: attr.clone(),
            counts,
            max_degree,
        })
    }

    /// The attribute the statistics are about.
    pub fn attr(&self) -> &Attr {
        &self.attr
    }

    /// Degree of a value (0 if absent).
    pub fn degree(&self, value: Value) -> u32 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Whether a value's degree is at least the threshold (a *heavy* value in
    /// the paper's terminology).
    pub fn is_heavy(&self, value: Value, threshold: u32) -> bool {
        self.degree(value) >= threshold
    }

    /// Maximum degree over all values.
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Number of distinct values.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(value, degree)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Value, u32)> + '_ {
        self.counts.iter().map(|(&v, &d)| (v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn rel() -> Relation {
        Relation::with_tuples(
            "R",
            attrs(["A", "B"]),
            vec![vec![1, 10], vec![2, 10], vec![1, 20], vec![3, 30]],
        )
        .unwrap()
    }

    #[test]
    fn hash_index_lookup() {
        let r = rel();
        let idx = HashIndex::build(&r, &attrs(["B"])).unwrap();
        assert_eq!(idx.get(&[10]).len(), 2);
        assert_eq!(idx.get(&[20]), &[2]);
        assert_eq!(idx.get(&[99]).len(), 0);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(idx.contains(&[30]));
    }

    #[test]
    fn hash_index_composite_key() {
        let r = rel();
        let idx = HashIndex::build(&r, &attrs(["A", "B"])).unwrap();
        assert_eq!(idx.get(&[1, 20]), &[2]);
        assert_eq!(idx.distinct_keys(), 4);
        assert_eq!(idx.key_of(&[7, 8]), vec![7, 8]);
    }

    #[test]
    fn hash_index_empty_key_groups_everything() {
        let r = rel();
        let idx = HashIndex::build(&r, &[]).unwrap();
        assert_eq!(idx.get(&[]).len(), 4);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn degree_index_counts() {
        let r = rel();
        let d = DegreeIndex::build(&r, &Attr::new("A")).unwrap();
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.degree(2), 1);
        assert_eq!(d.degree(42), 0);
        assert_eq!(d.max_degree(), 2);
        assert_eq!(d.distinct_values(), 3);
        assert!(d.is_heavy(1, 2));
        assert!(!d.is_heavy(2, 2));
    }

    #[test]
    fn unknown_attr_is_error() {
        let r = rel();
        assert!(HashIndex::build(&r, &attrs(["Z"])).is_err());
        assert!(DegreeIndex::build(&r, &Attr::new("Z")).is_err());
    }
}
