//! Directed edge graphs for the cyclic-query experiments (Section 6.2.2).

use crate::weights::{log_degree_weights, random_weights};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use re_ranking::Weight;
use re_storage::{Attr, Relation, Value};
use std::collections::{HashMap, HashSet};

/// Configuration of a random directed graph.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Name of the edge relation.
    pub relation_name: String,
    /// Source attribute name.
    pub src_attr: String,
    /// Destination attribute name.
    pub dst_attr: String,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of distinct edges.
    pub edges: usize,
    /// Zipf exponent of endpoint popularity.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GraphConfig {
    /// A default configuration with moderate skew.
    pub fn new(vertices: usize, edges: usize, seed: u64) -> Self {
        GraphConfig {
            relation_name: "Edge".into(),
            src_attr: "src".into(),
            dst_attr: "dst".into(),
            vertices,
            edges,
            skew: 0.7,
            seed,
        }
    }
}

/// A generated directed graph with vertex weight tables.
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// The edge relation `E(src, dst)`.
    pub edges: Relation,
    /// Uniform random vertex weights.
    pub random_weights: HashMap<Value, Weight>,
    /// `log2(1 + out-degree)` vertex weights.
    pub log_weights: HashMap<Value, Weight>,
    config: GraphConfig,
}

impl GraphDataset {
    /// Generate a graph from a configuration.
    pub fn generate(config: GraphConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sampler = ZipfSampler::new(config.vertices, config.skew);
        let mut edges = Relation::new(
            config.relation_name.clone(),
            [config.src_attr.clone(), config.dst_attr.clone()],
        );
        let mut seen: HashSet<(Value, Value)> = HashSet::with_capacity(config.edges);
        let max_attempts = config.edges.saturating_mul(20).max(1000);
        let mut attempts = 0;
        while seen.len() < config.edges && attempts < max_attempts {
            attempts += 1;
            let s = sampler.sample(&mut rng) as Value + 1;
            let t = sampler.sample(&mut rng) as Value + 1;
            if s == t {
                continue;
            }
            if seen.insert((s, t)) {
                edges.push_unchecked(&[s, t]);
            }
        }
        let ids: Vec<Value> = (1..=config.vertices as Value).collect();
        GraphDataset {
            random_weights: random_weights(ids, config.seed ^ 0xC3C3),
            log_weights: log_degree_weights(&edges, &Attr::new(&config.src_attr)),
            edges,
            config,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_distinct_loop_free_edges() {
        let g = GraphDataset::generate(GraphConfig::new(200, 1500, 11));
        assert_eq!(g.edges.len(), 1500);
        let mut seen = HashSet::new();
        for t in g.edges.iter() {
            assert_ne!(t[0], t[1], "self loops excluded");
            assert!(seen.insert(t.to_vec()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GraphDataset::generate(GraphConfig::new(100, 500, 5));
        let b = GraphDataset::generate(GraphConfig::new(100, 500, 5));
        assert_eq!(
            a.edges.iter().collect::<Vec<_>>(),
            b.edges.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn weights_cover_vertices() {
        let g = GraphDataset::generate(GraphConfig::new(50, 200, 9));
        for t in g.edges.iter() {
            assert!(g.random_weights.contains_key(&t[0]));
            assert!(g.random_weights.contains_key(&t[1]));
        }
    }
}
