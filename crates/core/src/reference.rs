//! The pre-arena general engine, retained as oracle and baseline.
//!
//! [`ReferenceAcyclic`] is the Algorithm 1–2 implementation the arena-backed
//! [`AcyclicEnumerator`](crate::AcyclicEnumerator) replaced: it
//! materialises an owned `Tuple` per cell, clones it again (tie-permuted)
//! into every heap entry, clones the rank key per entry, and keys its
//! per-anchor queues on owned anchor `Tuple`s. Functionally correct and
//! byte-identical in output to the kernel engine — which is exactly why it
//! survives:
//!
//! * it is the **differential-testing oracle** the equivalence suites pit
//!   the kernel engine against, and
//! * it is the **benchmark baseline** (`crates/bench`'s `enum_frontier`
//!   pins old-vs-new time-to-k and peak frontier bytes).
//!
//! Its allocation habits are deliberately preserved — every hot-path tuple
//! it builds ticks [`EnumStats::tuple_allocs`], proving that tripwire
//! actually fires (the kernel engine's tests assert the counter stays
//! zero), and [`ReferenceAcyclic::frontier_bytes`] walks the owned
//! structures so the benchmark can compare real footprints.

use crate::cell::{Cell, CellId, HeapEntry, NextPtr};
use crate::error::EnumError;
use crate::stats::EnumStats;
use re_exec::ExecContext;
use re_join::{materialize_bags, reduce_then_prune_ctx};
use re_query::{Atom, GhdPlan, JoinProjectQuery, JoinTree, QueryError};
use re_ranking::{RankKey, Ranking};
use re_storage::{Attr, Database, Relation, Tuple};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Per-node state of the reference engine (owned tuples throughout).
struct NodeState<R: Ranking> {
    relation: Relation,
    anchor_pos: Vec<usize>,
    own_proj_pos: Vec<usize>,
    children: Vec<usize>,
    child_anchor_pos: Vec<Vec<usize>>,
    tie_perm: Vec<usize>,
    plan: <R as Ranking>::Plan,
    cells: Vec<Cell<R::Key>>,
    queues: HashMap<Tuple, BinaryHeap<Reverse<HeapEntry<R::Key>>>>,
}

/// The pre-arena ranked enumerator for acyclic join-project queries.
pub struct ReferenceAcyclic<R: Ranking + Clone> {
    ranking: R,
    tree: JoinTree,
    nodes: Vec<NodeState<R>>,
    projection: Vec<Attr>,
    last_emitted: Option<Tuple>,
    stats: EnumStats,
    exhausted: bool,
}

impl<R: Ranking + Clone> ReferenceAcyclic<R> {
    /// Build the enumerator with a default join tree.
    pub fn new(query: &JoinProjectQuery, db: &Database, ranking: R) -> Result<Self, EnumError> {
        let tree = JoinTree::build(query)?;
        Self::with_tree(query, db, ranking, tree)
    }

    /// Build the enumerator with an explicit join tree.
    pub fn with_tree(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        tree: JoinTree,
    ) -> Result<Self, EnumError> {
        query.validate_against(db)?;
        let (pruned, reduced, _) = reduce_then_prune_ctx(&ExecContext::serial(), query, tree, db)?;
        Self::from_reduced(query.projection().to_vec(), ranking, pruned, reduced)
    }

    /// Reference twin of `CyclicEnumerator`: materialise the GHD bags
    /// serially, then run the reference engine on the residual acyclic
    /// query — the old cyclic path for old-vs-new comparisons.
    pub fn for_cyclic(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: R,
        plan: &GhdPlan,
    ) -> Result<Self, EnumError> {
        query.validate_against(db)?;
        let ctx = ExecContext::serial();
        let mut bag_db = Database::new();
        let mut atoms = Vec::with_capacity(plan.len());
        let rels = materialize_bags(query, db, plan.bags(), &ctx)?;
        for (bag, rel) in plan.bags().iter().zip(rels) {
            atoms.push(Atom::new(
                bag.name.clone(),
                bag.name.clone(),
                bag.attrs.clone(),
            ));
            bag_db.set_relation(rel);
        }
        let residual = JoinProjectQuery::new(atoms, query.projection().to_vec())?;
        let tree = match JoinTree::build(&residual) {
            Ok(t) => t,
            Err(QueryError::NotAcyclic) => return Err(EnumError::ResidualCyclic),
            Err(e) => return Err(EnumError::Query(e)),
        };
        Self::with_tree(&residual, &bag_db, ranking, tree)
    }

    /// Build the enumerator from fully reduced per-node relations.
    pub fn from_reduced(
        projection: Vec<Attr>,
        ranking: R,
        tree: JoinTree,
        reduced: Vec<Relation>,
    ) -> Result<Self, EnumError> {
        assert_eq!(tree.len(), reduced.len());
        let mut stats = EnumStats::new();
        let empty_result = reduced.iter().any(|r| r.is_empty());

        let global_pos = |a: &Attr| -> usize {
            projection
                .iter()
                .position(|x| x == a)
                .expect("projection attribute missing from join tree output")
        };

        let mut nodes: Vec<NodeState<R>> = Vec::with_capacity(tree.len());
        for (idx, rel) in reduced.into_iter().enumerate() {
            let node = tree.node(idx);
            let anchor_pos = rel.positions(&node.anchor)?;
            let own_proj_pos = rel.positions(&node.own_proj)?;
            let child_anchor_pos = node
                .children
                .iter()
                .map(|&c| rel.positions(&tree.node(c).anchor))
                .collect::<Result<Vec<_>, _>>()?;
            let mut tie_perm: Vec<usize> = (0..node.subtree_proj.len()).collect();
            tie_perm.sort_by_key(|&i| global_pos(&node.subtree_proj[i]));
            nodes.push(NodeState {
                anchor_pos,
                own_proj_pos,
                children: node.children.clone(),
                child_anchor_pos,
                tie_perm,
                plan: ranking.plan(&node.subtree_proj),
                relation: rel,
                cells: Vec::new(),
                queues: HashMap::new(),
            });
        }

        // Preprocessing (Algorithm 1): bottom-up cell construction.
        if !empty_result {
            for &u in &tree.post_order() {
                let mut new_cells: Vec<Cell<R::Key>> = Vec::with_capacity(nodes[u].relation.len());
                let mut inserts: Vec<(Tuple, HeapEntry<R::Key>)> =
                    Vec::with_capacity(nodes[u].relation.len());
                {
                    let ns = &nodes[u];
                    'rows: for (row, t) in ns.relation.iter().enumerate() {
                        let mut child_ptrs: Vec<CellId> = Vec::with_capacity(ns.children.len());
                        let mut output: Tuple = ns.own_proj_pos.iter().map(|&p| t[p]).collect();
                        for (ci, &child) in ns.children.iter().enumerate() {
                            let key: Tuple =
                                ns.child_anchor_pos[ci].iter().map(|&p| t[p]).collect();
                            let Some(top) = nodes[child].queues.get(&key).and_then(|q| q.peek())
                            else {
                                debug_assert!(false, "dangling tuple on reduced instance");
                                continue 'rows;
                            };
                            let top_cell = top.0.cell;
                            child_ptrs.push(top_cell);
                            output.extend(
                                nodes[child].cells[top_cell as usize].output.iter().copied(),
                            );
                        }
                        let key = ranking.key(&ns.plan, &output);
                        let tie: Tuple = ns.tie_perm.iter().map(|&p| output[p]).collect();
                        let anchor_key: Tuple = ns.anchor_pos.iter().map(|&p| t[p]).collect();
                        let cell_id = new_cells.len() as CellId;
                        new_cells.push(Cell {
                            row: row as u32,
                            child_ptrs,
                            advance_from: 0,
                            next: NextPtr::NotComputed,
                            output,
                            key: key.clone(),
                        });
                        inserts.push((
                            anchor_key,
                            HeapEntry {
                                key,
                                output: tie,
                                cell: cell_id,
                            },
                        ));
                    }
                }
                stats.cells_created += new_cells.len() as u64;
                stats.pq_pushes += inserts.len() as u64;
                let ns = &mut nodes[u];
                ns.cells = new_cells;
                for (anchor_key, entry) in inserts {
                    ns.queues
                        .entry(anchor_key)
                        .or_default()
                        .push(Reverse(entry));
                }
            }
        }

        let mut this = ReferenceAcyclic {
            ranking,
            tree,
            nodes,
            projection,
            last_emitted: None,
            stats,
            exhausted: empty_result,
        };
        let bytes = this.frontier_bytes();
        this.stats.frontier_alloc(bytes, bytes);
        Ok(this)
    }

    /// The projection attributes, in output order.
    pub fn output_attrs(&self) -> &[Attr] {
        &self.projection
    }

    /// Enumeration statistics collected so far.
    pub fn stats(&self) -> &EnumStats {
        &self.stats
    }

    /// Total number of cells currently allocated.
    pub fn cell_count(&self) -> usize {
        self.nodes.iter().map(|n| n.cells.len()).sum()
    }

    /// The engine's frontier footprint, measured by walking the owned
    /// structures: per-cell `Tuple`s, pointer vectors and keys, plus the
    /// per-anchor queues with their cloned tie tuples and keys. This is
    /// what the arena kernel's `frontier_bytes` accounting is benchmarked
    /// against.
    pub fn frontier_bytes(&self) -> u64 {
        let mut bytes = 0usize;
        for ns in &self.nodes {
            for cell in &ns.cells {
                bytes += std::mem::size_of::<Cell<R::Key>>()
                    + cell.output.len() * std::mem::size_of::<re_storage::Value>()
                    + cell.child_ptrs.len() * std::mem::size_of::<CellId>()
                    + cell.key.heap_bytes();
            }
            for (anchor, queue) in &ns.queues {
                bytes += anchor.len() * std::mem::size_of::<re_storage::Value>()
                    + std::mem::size_of::<Tuple>()
                    + std::mem::size_of::<BinaryHeap<Reverse<HeapEntry<R::Key>>>>();
                for Reverse(entry) in queue.iter() {
                    bytes += std::mem::size_of::<HeapEntry<R::Key>>()
                        + entry.output.len() * std::mem::size_of::<re_storage::Value>()
                        + entry.key.heap_bytes();
                }
            }
        }
        bytes as u64
    }

    /// Compute the output tuple and key of a (row, child-pointer)
    /// combination at `node`. Allocates the output tuple — a hot-path sin
    /// the tripwire records.
    fn make_output(&mut self, node: usize, row: u32, ptrs: &[CellId]) -> (Tuple, R::Key) {
        let ns = &self.nodes[node];
        let t = ns.relation.tuple(row as usize);
        let mut out: Tuple = ns.own_proj_pos.iter().map(|&p| t[p]).collect();
        for (ci, &child) in ns.children.iter().enumerate() {
            out.extend(
                self.nodes[child].cells[ptrs[ci] as usize]
                    .output
                    .iter()
                    .copied(),
            );
        }
        let key = self.ranking.key(&self.nodes[node].plan, &out);
        self.stats.record_tuple_allocs(1);
        (out, key)
    }

    /// Insert a freshly created cell into `node`'s arena and queue.
    #[allow(clippy::too_many_arguments)] // mirrors the fields of `Cell`
    fn push_cell(
        &mut self,
        node: usize,
        row: u32,
        ptrs: Vec<CellId>,
        advance_from: u32,
        output: Tuple,
        key: R::Key,
        anchor_key: &Tuple,
    ) -> CellId {
        let ns = &mut self.nodes[node];
        let id = ns.cells.len() as CellId;
        let tie: Tuple = ns.tie_perm.iter().map(|&p| output[p]).collect();
        self.stats.record_tuple_allocs(1);
        ns.cells.push(Cell {
            row,
            child_ptrs: ptrs,
            advance_from,
            next: NextPtr::NotComputed,
            output,
            key: key.clone(),
        });
        let entry = Reverse(HeapEntry {
            key,
            output: tie,
            cell: id,
        });
        match ns.queues.get_mut(anchor_key) {
            Some(q) => q.push(entry),
            None => {
                ns.queues
                    .insert(anchor_key.clone(), BinaryHeap::from(vec![entry]));
            }
        }
        self.stats.record_cell();
        self.stats.record_push();
        id
    }

    /// Generate the successor cells of `cell` at `node`.
    fn expand_successors(&mut self, node: usize, cell: CellId, anchor_key: &Tuple) {
        let advance_from = self.nodes[node].cells[cell as usize].advance_from as usize;
        for ci in advance_from..self.nodes[node].children.len() {
            let child = self.nodes[node].children[ci];
            let child_cell = self.nodes[node].cells[cell as usize].child_ptrs[ci];
            if let Some(next_child) = self.topdown(child_cell, child) {
                let row = self.nodes[node].cells[cell as usize].row;
                let mut ptrs = self.nodes[node].cells[cell as usize].child_ptrs.clone();
                ptrs[ci] = next_child;
                let (output, key) = self.make_output(node, row, &ptrs);
                self.push_cell(node, row, ptrs, ci as u32, output, key, anchor_key);
            }
        }
    }

    /// The `Topdown` procedure of Algorithm 2.
    fn topdown(&mut self, cell: CellId, node: usize) -> Option<CellId> {
        match self.nodes[node].cells[cell as usize].next {
            NextPtr::Cell(c) => return Some(c),
            NextPtr::Exhausted => return None,
            NextPtr::NotComputed => {}
        }
        debug_assert_ne!(node, self.tree.root(), "topdown never drives the root");
        let anchor_key: Tuple = {
            let ns = &self.nodes[node];
            let t = ns.relation.tuple(ns.cells[cell as usize].row as usize);
            ns.anchor_pos.iter().map(|&p| t[p]).collect()
        };
        self.stats.record_tuple_allocs(1);
        let mut first_iteration = true;
        loop {
            let popped = {
                let ns = &mut self.nodes[node];
                ns.queues
                    .get_mut(&anchor_key)
                    .and_then(|q| q.pop())
                    .map(|Reverse(e)| e)
            };
            let Some(popped) = popped else {
                self.nodes[node].cells[cell as usize].next = NextPtr::Exhausted;
                return None;
            };
            self.stats.record_pop();
            if first_iteration {
                debug_assert_eq!(popped.cell, cell, "expanded cell must be the queue top");
                first_iteration = false;
            }

            self.expand_successors(node, popped.cell, &anchor_key);

            let (next_ptr, duplicate) = {
                let ns = &self.nodes[node];
                match ns.queues.get(&anchor_key).and_then(|q| q.peek()) {
                    None => (NextPtr::Exhausted, false),
                    Some(Reverse(e)) => (NextPtr::Cell(e.cell), e.output == popped.output),
                }
            };
            self.nodes[node].cells[cell as usize].next = next_ptr;
            if !duplicate {
                return match next_ptr {
                    NextPtr::Cell(c) => Some(c),
                    NextPtr::Exhausted | NextPtr::NotComputed => None,
                };
            }
        }
    }
}

impl<R: Ranking + Clone> Iterator for ReferenceAcyclic<R> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.exhausted {
            return None;
        }
        let root = self.tree.root();
        let root_key: Tuple = Vec::new();
        loop {
            let popped = self.nodes[root]
                .queues
                .get_mut(&root_key)
                .and_then(|q| q.pop())
                .map(|Reverse(e)| e);
            let Some(top) = popped else {
                self.exhausted = true;
                return None;
            };
            self.stats.record_pop();
            self.expand_successors(root, top.cell, &root_key);
            loop {
                let dup = {
                    let ns = &self.nodes[root];
                    match ns.queues.get(&root_key).and_then(|q| q.peek()) {
                        Some(Reverse(e)) if e.output == top.output => Some(e.cell),
                        _ => None,
                    }
                };
                let Some(cell) = dup else { break };
                self.nodes[root]
                    .queues
                    .get_mut(&root_key)
                    .and_then(|q| q.pop());
                self.stats.record_pop();
                self.expand_successors(root, cell, &root_key);
            }
            if self.last_emitted.as_ref() != Some(&top.output) {
                // The surviving dedup clone of the old engine.
                self.last_emitted = Some(top.output.clone());
                self.stats.record_tuple_allocs(1);
                self.stats.record_answer();
                return Some(top.output);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_ranking::SumRanking;
    use re_storage::attr::attrs;

    fn paper_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "R1",
                attrs(["A", "B"]),
                vec![vec![1, 1], vec![2, 1], vec![1, 2], vec![3, 2]],
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R2", attrs(["B", "C"]), vec![vec![1, 1], vec![2, 1]]).unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R3", attrs(["C", "D"]), vec![vec![1, 1], vec![1, 2]]).unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R4", attrs(["D", "E"]), vec![vec![1, 1], vec![1, 2]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn paper_query() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("R1", "R1", ["A", "B"])
            .atom("R2", "R2", ["B", "C"])
            .atom("R3", "R3", ["C", "D"])
            .atom("R4", "R4", ["D", "E"])
            .project(["A", "E"])
            .build()
            .unwrap()
    }

    #[test]
    fn reference_engine_reproduces_the_paper_sequence() {
        let results: Vec<Tuple> =
            ReferenceAcyclic::new(&paper_query(), &paper_db(), SumRanking::value_sum())
                .unwrap()
                .collect();
        assert_eq!(
            results,
            vec![
                vec![1, 1],
                vec![1, 2],
                vec![2, 1],
                vec![2, 2],
                vec![3, 1],
                vec![3, 2],
            ]
        );
    }

    #[test]
    fn reference_engine_ticks_the_tuple_alloc_tripwire() {
        let mut e =
            ReferenceAcyclic::new(&paper_query(), &paper_db(), SumRanking::value_sum()).unwrap();
        let n = e.by_ref().count();
        assert!(n > 0);
        assert!(
            e.stats().tuple_allocs > 0,
            "the pre-arena engine allocates tuples in the hot path — the \
             tripwire must fire on it"
        );
    }

    #[test]
    fn frontier_bytes_walk_the_owned_structures() {
        let mut e =
            ReferenceAcyclic::new(&paper_query(), &paper_db(), SumRanking::value_sum()).unwrap();
        let at_build = e.frontier_bytes();
        assert!(at_build > 0);
        let _ = e.by_ref().count();
        assert!(
            e.frontier_bytes() >= at_build,
            "cells only accumulate while enumerating"
        );
    }
}
