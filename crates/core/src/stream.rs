//! Object-safe view of a live ranked enumeration.
//!
//! The enumerators in this crate are generic over the ranking function, so
//! a component that keeps *many* live enumerations of different shapes —
//! e.g. a query server's session table, where each session holds a
//! resumable cursor — needs a common, type-erased interface. A
//! [`RankedStream`] is exactly that: a `Send` iterator over output tuples
//! in rank order that also reports its output attributes, the enumeration
//! strategy it runs and a cheap snapshot of its statistics.
//!
//! All enumerators own their inputs (the full-reducer pass copies the
//! relations they need out of the database), so a boxed stream can migrate
//! freely between worker threads for as long as the session lives.

use crate::acyclic::AcyclicEnumerator;
use crate::auto::{Algorithm, RankedEnumerator};
use crate::cyclic::{CyclicEnumerator, GhdReport};
use crate::lexi::LexiEnumerator;
use crate::stats::StatsSnapshot;
use crate::union::UnionEnumerator;
use re_exec::{CancelKind, CancelToken};
use re_obs::{saturating_nanos, AtomicHistogram, LocalHistogram, TimingBreakdown};
use re_ranking::Ranking;
use re_storage::{Attr, Tuple};
use std::sync::Arc;
use std::time::Instant;

/// A type-erased, thread-migratable ranked enumeration in progress.
pub trait RankedStream: Iterator<Item = Tuple> + Send {
    /// The projection attributes, in output order.
    fn output_attrs(&self) -> &[Attr];

    /// The enumeration strategy driving this stream.
    fn algorithm(&self) -> Algorithm;

    /// Cheap summary of the work done so far. Monotone, so per-page deltas
    /// can be computed by differencing two snapshots.
    fn stats_snapshot(&self) -> StatsSnapshot;

    /// The GHD plan shape behind this stream, when the query needed a
    /// decomposition: the chosen shape, annotated with the fallback reason
    /// if selection had to degrade to full materialisation. `None` for
    /// decomposition-free strategies.
    fn plan_shape(&self) -> Option<String> {
        None
    }

    /// Wall-clock profile of this enumeration (open duration, phase
    /// breakdown, time-to-first-answer, inter-answer delay histogram).
    /// `None` unless the stream is wrapped in an [`InstrumentedStream`];
    /// raw enumerators carry counters only.
    fn timing_breakdown(&self) -> Option<TimingBreakdown> {
        None
    }

    /// The full GHD selection report (candidates compared, per-bag
    /// estimate-vs-actual details) when the query ran through a
    /// decomposition. `None` for decomposition-free strategies.
    fn ghd_report(&self) -> Option<GhdReport> {
        None
    }

    /// Why the stream stopped early, if it did: a cancellation-aware
    /// wrapper ([`InstrumentedStream`] with a token attached) returns
    /// `Some(kind)` once its token trips, letting consumers distinguish a
    /// cancelled stream from an exhausted one — both return `None` from
    /// `next()`. Raw enumerators never cancel.
    fn cancel_status(&self) -> Option<CancelKind> {
        None
    }
}

/// A [`RankedStream`] wrapper that measures wall-clock behaviour: the
/// delay between consecutive `next()` returns (recorded both in a
/// per-stream histogram and the global `cursor.delay_ns` aggregate) and
/// the time from `opened_at` to the first answer (`cursor.ttfa_ns`).
///
/// The per-`next()` cost is two `Instant::now()` calls, one local bucket
/// increment and one relaxed `fetch_add` — allocation-free, preserving
/// the enumeration tripwires. The instrumentation-overhead gate in
/// `check_bench` holds the enum benches (which run through this wrapper)
/// to the same ratio-drift guard as uninstrumented runs.
pub struct InstrumentedStream {
    inner: Box<dyn RankedStream>,
    opened_at: Instant,
    open_nanos: u64,
    phases: Vec<(String, u64)>,
    answers: u64,
    first_answer_nanos: Option<u64>,
    delay: LocalHistogram,
    delay_global: Arc<AtomicHistogram>,
    ttfa_global: Arc<AtomicHistogram>,
    /// Cancellation token polled before each `next()`; `None` never trips.
    cancel: Option<CancelToken>,
    /// Latched once the token trips: the stream stays stopped (and keeps
    /// reporting the same kind) even if time or flags move on.
    cancel_status: Option<CancelKind>,
}

impl InstrumentedStream {
    /// Wrap a freshly opened stream. `opened_at` is the instant opening
    /// began and `phases` the spans captured while it ran; `open_nanos`
    /// is measured here, so call this immediately after construction.
    pub fn new(
        inner: Box<dyn RankedStream>,
        opened_at: Instant,
        phases: Vec<(String, u64)>,
    ) -> Self {
        let registry = re_obs::global();
        InstrumentedStream {
            inner,
            opened_at,
            open_nanos: saturating_nanos(opened_at.elapsed()),
            phases,
            answers: 0,
            first_answer_nanos: None,
            delay: LocalHistogram::new(),
            delay_global: registry.histogram("cursor.delay_ns"),
            ttfa_global: registry.histogram("cursor.ttfa_ns"),
            cancel: None,
            cancel_status: None,
        }
    }

    /// Attach a cancellation token: once it trips, `next()` returns `None`
    /// and [`RankedStream::cancel_status`] reports why.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

impl Iterator for InstrumentedStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.cancel_status.is_some() {
            return None;
        }
        if let Some(token) = &self.cancel {
            if let Err(kind) = token.check() {
                self.cancel_status = Some(kind);
                return None;
            }
        }
        let start = Instant::now();
        let item = self.inner.next();
        if item.is_some() {
            let nanos = saturating_nanos(start.elapsed());
            self.delay.record(nanos);
            self.delay_global.record(nanos);
            if self.answers == 0 {
                let ttfa = saturating_nanos(self.opened_at.elapsed());
                self.first_answer_nanos = Some(ttfa);
                self.ttfa_global.record(ttfa);
            }
            self.answers += 1;
        }
        item
    }
}

impl RankedStream for InstrumentedStream {
    fn output_attrs(&self) -> &[Attr] {
        self.inner.output_attrs()
    }

    fn algorithm(&self) -> Algorithm {
        self.inner.algorithm()
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }

    fn plan_shape(&self) -> Option<String> {
        self.inner.plan_shape()
    }

    fn ghd_report(&self) -> Option<GhdReport> {
        self.inner.ghd_report()
    }

    fn timing_breakdown(&self) -> Option<TimingBreakdown> {
        Some(TimingBreakdown {
            open_nanos: self.open_nanos,
            phases: self.phases.clone(),
            answers: self.answers,
            first_answer_nanos: self.first_answer_nanos,
            delay: self.delay.snapshot(),
        })
    }

    fn cancel_status(&self) -> Option<CancelKind> {
        self.cancel_status
    }
}

impl<R: Ranking + Clone> RankedStream for AcyclicEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        AcyclicEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::Acyclic
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }
}

impl<R: Ranking + Clone> RankedStream for CyclicEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        CyclicEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::CyclicGhd
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    fn plan_shape(&self) -> Option<String> {
        let report = self.plan_report();
        Some(match &report.fallback {
            Some(reason) => format!("{} [fallback: {reason}]", report.shape),
            None => report.shape.clone(),
        })
    }

    fn ghd_report(&self) -> Option<GhdReport> {
        Some(self.plan_report().clone())
    }
}

impl<R: Ranking + Clone> RankedStream for RankedEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        RankedEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        RankedEnumerator::algorithm(self)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }

    fn plan_shape(&self) -> Option<String> {
        match self {
            RankedEnumerator::Acyclic(_) => None,
            RankedEnumerator::Cyclic(c) => RankedStream::plan_shape(c),
        }
    }

    fn ghd_report(&self) -> Option<GhdReport> {
        match self {
            RankedEnumerator::Acyclic(_) => None,
            RankedEnumerator::Cyclic(c) => RankedStream::ghd_report(c),
        }
    }
}

impl<R: Ranking + Clone + 'static> RankedStream for UnionEnumerator<R> {
    fn output_attrs(&self) -> &[Attr] {
        UnionEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::UnionMerge
    }

    /// Merge counters plus every branch enumerator's work (preprocessing
    /// cells, branch priority queues); opaque `from_streams` sources
    /// contribute zero.
    fn stats_snapshot(&self) -> StatsSnapshot {
        UnionEnumerator::stats_snapshot(self)
    }
}

impl RankedStream for LexiEnumerator {
    fn output_attrs(&self) -> &[Attr] {
        LexiEnumerator::output_attrs(self)
    }

    fn algorithm(&self) -> Algorithm {
        Algorithm::Lexi
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_ranking::SumRanking;
    use re_storage::attr::attrs;
    use re_storage::{Database, Relation};

    fn assert_send<T: Send>(_: &T) {}

    #[test]
    fn enumerators_are_send_and_type_erasable() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["s", "t"]),
                vec![vec![1, 2], vec![2, 3], vec![2, 4]],
            )
            .unwrap(),
        )
        .unwrap();
        let q = QueryBuilder::new()
            .atom("E1", "E", ["x", "y"])
            .atom("E2", "E", ["y", "z"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let e = RankedEnumerator::new(&q, &db, SumRanking::value_sum()).unwrap();
        assert_send(&e);
        let mut boxed: Box<dyn RankedStream> = Box::new(e);
        assert_eq!(boxed.algorithm(), Algorithm::Acyclic);
        assert_eq!(boxed.output_attrs(), &[Attr::new("x"), Attr::new("z")]);
        let before = boxed.stats_snapshot();
        let first = boxed.next().unwrap();
        assert_eq!(first, vec![1, 3]);
        let delta = boxed.stats_snapshot().diff(&before);
        assert_eq!(delta.answers, 1);
        // The boxed stream can cross a thread boundary mid-enumeration.
        let rest = std::thread::spawn(move || boxed.collect::<Vec<_>>())
            .join()
            .unwrap();
        assert!(!rest.is_empty());
    }

    #[test]
    fn instrumented_stream_reports_timing_without_changing_answers() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["s", "t"]),
                vec![vec![1, 2], vec![2, 3], vec![2, 4]],
            )
            .unwrap(),
        )
        .unwrap();
        let q = QueryBuilder::new()
            .atom("E1", "E", ["x", "y"])
            .atom("E2", "E", ["y", "z"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let opened_at = std::time::Instant::now();
        let (raw, phases) = re_obs::capture_phases(|| {
            RankedEnumerator::new(&q, &db, SumRanking::value_sum()).unwrap()
        });
        let expected: Vec<Tuple> = RankedEnumerator::new(&q, &db, SumRanking::value_sum())
            .unwrap()
            .collect();
        let mut stream = InstrumentedStream::new(Box::new(raw), opened_at, phases);

        // Before the first answer: no TTFA, empty delay histogram.
        let t0 = stream.timing_breakdown().unwrap();
        assert_eq!(t0.answers, 0);
        assert!(t0.first_answer_nanos.is_none());
        assert!(t0.delay.is_empty());
        // The 2-hop open ran the full reducer, and the capture saw it.
        assert!(t0.phase_nanos("preprocess.reduce") > 0);

        let got: Vec<Tuple> = stream.by_ref().collect();
        assert_eq!(got, expected);

        let t1 = stream.timing_breakdown().unwrap();
        assert_eq!(t1.answers, expected.len() as u64);
        assert_eq!(t1.delay.count(), expected.len() as u64);
        let ttfa = t1.first_answer_nanos.unwrap();
        // TTFA includes the open, so it can never undercut it.
        assert!(ttfa >= t1.open_nanos);
        // Exhausted `next()` calls after the last answer record nothing.
        assert!(stream.next().is_none());
        assert_eq!(
            stream.timing_breakdown().unwrap().delay.count(),
            t1.delay.count()
        );
    }

    #[test]
    fn tripped_cancel_token_stops_the_stream_with_a_latched_status() {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "E",
                attrs(["s", "t"]),
                vec![vec![1, 2], vec![2, 3], vec![2, 4]],
            )
            .unwrap(),
        )
        .unwrap();
        let q = QueryBuilder::new()
            .atom("E1", "E", ["x", "y"])
            .atom("E2", "E", ["y", "z"])
            .project(["x", "z"])
            .build()
            .unwrap();
        let raw = RankedEnumerator::new(&q, &db, SumRanking::value_sum()).unwrap();
        let token = re_exec::CancelToken::unbounded();
        let mut stream = InstrumentedStream::new(Box::new(raw), std::time::Instant::now(), vec![])
            .with_cancel_token(token.clone());
        assert_eq!(stream.cancel_status(), None);
        let first = stream.next();
        assert!(first.is_some(), "untripped token must not block answers");
        token.cancel();
        assert!(stream.next().is_none(), "tripped token stops the stream");
        assert_eq!(stream.cancel_status(), Some(CancelKind::Explicit));
        // The status is latched: further polls keep reporting it.
        assert!(stream.next().is_none());
        assert_eq!(stream.cancel_status(), Some(CancelKind::Explicit));
    }
}
