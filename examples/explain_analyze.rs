//! EXPLAIN and EXPLAIN ANALYZE across the paper's workload suite, ending
//! with a validated Chrome-trace export of the 6-cycle's worker-attributed
//! parallel bag fan-out.
//!
//! Run with: `cargo run --release --example explain_analyze`
//! (`RE_SCALE` shrinks the instance — see `rankedenum::scale`.)

use rankedenum::datagen::BipartiteConfig;
use rankedenum::exec::ExecContext;
use rankedenum::obs;
use rankedenum::scale::scaled;
use rankedenum::server::Json;
use rankedenum::sql::{explain_query, ExplainMode, OwnedSqlExecutor};
use rankedenum::workloads::membership::WeightScheme;
use rankedenum::workloads::MembershipWorkload;
use std::sync::Arc;

/// Structural validation of an exported Chrome trace: it must parse as
/// JSON (the server's strict parser — integers only, so id corruption
/// cannot hide), expose a `traceEvents` array of complete (`ph == "X"`)
/// events, and attribute at least one bag-materialisation event to a pool
/// worker track (`tid >= 1`; `tid` 0 is the request thread).
fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let doc = Json::parse(json).map_err(|e| format!("chrome trace does not parse: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("empty traceEvents".to_string());
    }
    let mut bags = 0usize;
    let mut worker_attributed = 0usize;
    for ev in events {
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if ev.get(key).is_none() {
                return Err(format!("event missing `{key}`: {ev}"));
            }
        }
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("expected complete events only: {ev}"));
        }
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default();
        let on_worker = ev.get("tid").and_then(Json::as_u64).is_some_and(|t| t >= 1);
        if name == "bag.materialize" {
            bags += 1;
        }
        if on_worker && (name == "bag.materialize" || name == "exec.task") {
            worker_attributed += 1;
        }
    }
    if bags == 0 {
        return Err("no bag.materialize event in the trace".to_string());
    }
    if worker_attributed == 0 {
        return Err("no worker-attributed fan-out event in the trace".to_string());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = MembershipWorkload::generate(
        "DBLP",
        BipartiteConfig::dblp_like(scaled(2_000), 7),
        WeightScheme::Random,
    );

    // ------------------------------------------- EXPLAIN: the whole suite
    println!("=== EXPLAIN over the workload suite ===");
    let suite = [
        ("two_hop", w.two_hop().query),
        ("three_hop", w.three_hop().query),
        ("four_hop", w.four_hop().query),
        ("three_star", w.three_star().query),
        ("four_cycle", w.cycle(2).0.query),
        ("six_cycle", w.cycle(3).0.query),
        ("bowtie", w.bowtie().0.query),
        ("star_project_first(3)", w.star_project_first(3).query),
    ];
    for (label, query) in suite {
        println!("--- {label}");
        print!("{}", explain_query(w.db(), &query)?);
    }

    // ------------------------- EXPLAIN ANALYZE: acyclic and cyclic, as SQL
    let db = Arc::new(w.db().clone());
    // Small morsels so even the smoke-scale instance fans out onto the pool.
    let ctx = ExecContext::with_threads(4)
        .with_morsel_rows(256)
        .with_min_par_rows(64);
    let exec = OwnedSqlExecutor::new(Arc::clone(&db)).with_exec_context(ctx);

    let two_hop = "SELECT DISTINCT M1.aid, M2.aid \
                   FROM AuthorPapers AS M1, AuthorPapers AS M2 \
                   WHERE M1.pid = M2.pid \
                   ORDER BY M1.aid + M2.aid LIMIT 20";
    println!("=== EXPLAIN ANALYZE: 2-hop ===");
    print!("{}", exec.explain(two_hop, ExplainMode::Analyze)?);

    let six_cycle = "SELECT DISTINCT M1.aid, M3.aid \
                     FROM AuthorPapers AS M1, AuthorPapers AS M2, AuthorPapers AS M3, \
                          AuthorPapers AS M4, AuthorPapers AS M5, AuthorPapers AS M6 \
                     WHERE M1.pid = M2.pid AND M2.aid = M3.aid AND M3.pid = M4.pid \
                       AND M4.aid = M5.aid AND M5.pid = M6.pid AND M6.aid = M1.aid \
                     ORDER BY M1.aid + M3.aid LIMIT 20";
    println!("=== EXPLAIN ANALYZE: 6-cycle ===");

    // --------------------------- export + validate the 6-cycle's trace
    //
    // Worker attribution is a race the request thread can win: at smoke
    // scale the 6-cycle fans out only a couple of bag tasks, and on a
    // loaded machine the caller may drain the queue before any pool worker
    // wakes. Each analyze run is independent, so retry until a trace shows
    // pool-side work rather than failing on one unlucky schedule.
    let mut json = String::new();
    let mut trace = None;
    let mut last_err = String::new();
    for attempt in 0..8 {
        let report = exec.explain(six_cycle, ExplainMode::Analyze)?;
        if attempt == 0 {
            print!("{report}");
        }
        let t = obs::global()
            .latest_trace()
            .ok_or("EXPLAIN ANALYZE should have pushed a trace")?;
        json = t.to_chrome_json();
        match validate_chrome_trace(&json) {
            Ok(()) => {
                trace = Some(t);
                break;
            }
            Err(e) => last_err = e,
        }
    }
    let trace = trace.ok_or_else(|| format!("no valid trace after 8 analyze runs: {last_err}"))?;
    let path = std::env::temp_dir().join("rankedenum_explain_analyze.trace.json");
    std::fs::write(&path, &json)?;
    println!(
        "=== chrome trace ===\ntrace {} ({} spans, {} bytes) validated -> {}",
        trace.trace_id,
        trace.spans.len(),
        json.len(),
        path.display()
    );
    Ok(())
}
