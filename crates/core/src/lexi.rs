//! The specialised algorithm for lexicographic orders (Algorithm 3,
//! Section 3.2 / Lemma 4).
//!
//! Lexicographic orders have more structure than SUM: the global order is
//! determined attribute by attribute, so the enumerator can *fix* the
//! smallest remaining value of the first attribute, semi-join the instance
//! down to the tuples compatible with it, recurse on the next attribute, and
//! backtrack — avoiding priority queues altogether. This gives `O(|D|)`
//! delay after an `O(|D| log |D|)` preprocessing pass, and supports an
//! arbitrary ASC/DESC direction per attribute
//! (`ORDER BY A1 ASC, A2 DESC, ...`).

use crate::error::EnumError;
use crate::stats::EnumStats;
use re_join::{full_reduce_relations, reduce_then_prune};
use re_query::{JoinProjectQuery, JoinTree};
use re_ranking::{Direction, LexRanking, WeightAssignment};
use re_storage::{Attr, Database, Relation, Tuple, Value};

/// One backtracking frame: the instance restricted to the values fixed so
/// far, and the remaining candidate values for the current attribute.
struct Frame {
    level: usize,
    relations: Vec<Relation>,
    candidates: Vec<Value>,
    next: usize,
    prefix: Vec<Value>,
}

/// Ranked enumerator for lexicographic orders based on backtracking
/// semi-joins (Algorithm 3).
pub struct LexiEnumerator {
    tree: JoinTree,
    /// Projection attributes in the user-requested (output) order.
    projection: Vec<Attr>,
    /// Projection attributes in lexicographic priority order, with their
    /// sort direction.
    attr_order: Vec<(Attr, Direction)>,
    weights: WeightAssignment,
    /// For every level, a join-tree node whose relation contains the
    /// attribute (used to read candidate values).
    attr_node: Vec<usize>,
    /// Permutation from `attr_order` positions to the user projection order.
    output_perm: Vec<usize>,
    stack: Vec<Frame>,
    stats: EnumStats,
}

impl LexiEnumerator {
    /// Build the enumerator for an acyclic query under a lexicographic
    /// ranking. Attributes of the ranking that are not projected are
    /// ignored; projected attributes missing from the ranking order are
    /// appended (ascending) after the declared ones.
    pub fn new(
        query: &JoinProjectQuery,
        db: &Database,
        ranking: &LexRanking,
    ) -> Result<Self, EnumError> {
        query.validate_against(db)?;
        let (tree, reduced) = reduce_then_prune(query, JoinTree::build(query)?, db)?;

        // Lexicographic attribute order restricted to the projection.
        let mut attr_order: Vec<(Attr, Direction)> = ranking
            .order()
            .iter()
            .filter(|(a, _)| query.is_projected(a))
            .cloned()
            .collect();
        for p in query.projection() {
            if !attr_order.iter().any(|(a, _)| a == p) {
                attr_order.push((p.clone(), Direction::Asc));
            }
        }

        // A node containing each ordered attribute.
        let attr_node = attr_order
            .iter()
            .map(|(a, _)| {
                tree.nodes()
                    .iter()
                    .position(|n| n.vars.contains(a))
                    .expect("projection attribute must appear in the pruned tree")
            })
            .collect::<Vec<_>>();

        let output_perm = query
            .projection()
            .iter()
            .map(|p| {
                attr_order
                    .iter()
                    .position(|(a, _)| a == p)
                    .expect("projection attribute present in order")
            })
            .collect();

        let weights = ranking.weights().clone();
        let mut this = LexiEnumerator {
            tree,
            projection: query.projection().to_vec(),
            attr_order,
            weights,
            attr_node,
            output_perm,
            stack: Vec::new(),
            stats: EnumStats::new(),
        };

        if !reduced.iter().any(|r| r.is_empty()) {
            let candidates = this.sorted_candidates(&reduced, 0);
            this.stack.push(Frame {
                level: 0,
                relations: reduced,
                candidates,
                next: 0,
                prefix: Vec::new(),
            });
        }
        Ok(this)
    }

    /// The lexicographic attribute order actually used (projection
    /// attributes only).
    pub fn attr_order(&self) -> &[(Attr, Direction)] {
        &self.attr_order
    }

    /// The projection attributes, in output order.
    pub fn output_attrs(&self) -> &[Attr] {
        &self.projection
    }

    /// Enumeration statistics.
    pub fn stats(&self) -> &EnumStats {
        &self.stats
    }

    /// Distinct values of the `level`-th ordered attribute in the (reduced)
    /// instance, sorted by weight according to the attribute's direction.
    fn sorted_candidates(&self, relations: &[Relation], level: usize) -> Vec<Value> {
        let (attr, dir) = &self.attr_order[level];
        let node = self.attr_node[level];
        let mut values = relations[node]
            .distinct_values(attr)
            .expect("attribute exists in its node");
        values.sort_by(|&a, &b| {
            let wa = (self.weights.weight_of(attr, a), a);
            let wb = (self.weights.weight_of(attr, b), b);
            match dir {
                Direction::Asc => wa.cmp(&wb),
                Direction::Desc => wb.cmp(&wa),
            }
        });
        values
    }

    fn permute(&self, ordered: &[Value]) -> Tuple {
        self.output_perm.iter().map(|&p| ordered[p]).collect()
    }
}

impl Iterator for LexiEnumerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        let m = self.attr_order.len();
        loop {
            let frame = self.stack.last_mut()?;
            if frame.next >= frame.candidates.len() {
                self.stack.pop();
                continue;
            }
            let value = frame.candidates[frame.next];
            frame.next += 1;
            let level = frame.level;
            let mut prefix = frame.prefix.clone();
            prefix.push(value);

            if level + 1 == m {
                self.stats.record_answer();
                return Some(self.permute(&prefix));
            }

            // Restrict every relation containing the attribute to the chosen
            // value, then run the full reducer to restore global consistency
            // ("two-phase semi-joins" in the paper).
            let attr = self.attr_order[level].0.clone();
            let mut restricted = frame.relations.clone();
            for rel in restricted.iter_mut() {
                if let Some(p) = rel.position(&attr) {
                    rel.retain(|t| t[p] == value);
                }
            }
            if full_reduce_relations(&self.tree, &mut restricted).is_err() {
                // Cannot happen: the schema never changes. Treat as pruned.
                continue;
            }
            if restricted.iter().any(|r| r.is_empty()) {
                // The chosen value no longer extends to an answer; possible
                // only on non-reduced input, but harmless to skip.
                continue;
            }
            let candidates = self.sorted_candidates(&restricted, level + 1);
            self.stack.push(Frame {
                level: level + 1,
                relations: restricted,
                candidates,
                next: 0,
                prefix,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acyclic::AcyclicEnumerator;
    use re_query::QueryBuilder;
    use re_storage::attr::attrs;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples(
                "R1",
                attrs(["A", "B"]),
                vec![vec![1, 1], vec![2, 1], vec![1, 2], vec![3, 2]],
            )
            .unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R2", attrs(["B", "C"]), vec![vec![1, 1], vec![2, 1]]).unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R3", attrs(["C", "D"]), vec![vec![1, 1], vec![1, 2]]).unwrap(),
        )
        .unwrap();
        db.add_relation(
            Relation::with_tuples("R4", attrs(["D", "E"]), vec![vec![1, 1], vec![1, 2]]).unwrap(),
        )
        .unwrap();
        db
    }

    fn query() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("R1", "R1", ["A", "B"])
            .atom("R2", "R2", ["B", "C"])
            .atom("R3", "R3", ["C", "D"])
            .atom("R4", "R4", ["D", "E"])
            .project(["A", "E"])
            .build()
            .unwrap()
    }

    #[test]
    fn lexicographic_order_a_then_e() {
        let lex = LexRanking::new(["A", "E"], WeightAssignment::value_as_weight());
        let e = LexiEnumerator::new(&query(), &db(), &lex).unwrap();
        let results: Vec<Tuple> = e.collect();
        assert_eq!(
            results,
            vec![
                vec![1, 1],
                vec![1, 2],
                vec![2, 1],
                vec![2, 2],
                vec![3, 1],
                vec![3, 2],
            ]
        );
    }

    #[test]
    fn matches_general_algorithm_with_lex_ranking() {
        let lex = LexRanking::new(["E", "A"], WeightAssignment::value_as_weight());
        let via_lexi: Vec<Tuple> = LexiEnumerator::new(&query(), &db(), &lex)
            .unwrap()
            .collect();
        let via_general: Vec<Tuple> = AcyclicEnumerator::new(&query(), &db(), lex)
            .unwrap()
            .collect();
        assert_eq!(via_lexi, via_general);
    }

    #[test]
    fn descending_direction() {
        let lex = LexRanking::with_directions(
            [("A", Direction::Desc), ("E", Direction::Asc)],
            WeightAssignment::value_as_weight(),
        );
        let results: Vec<Tuple> = LexiEnumerator::new(&query(), &db(), &lex)
            .unwrap()
            .collect();
        assert_eq!(results[0], vec![3, 1]);
        assert_eq!(results[1], vec![3, 2]);
        assert_eq!(results.last().unwrap(), &vec![1, 2]);
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn empty_result() {
        let mut d = Database::new();
        d.add_relation(Relation::with_tuples("R1", attrs(["A", "B"]), vec![vec![1, 5]]).unwrap())
            .unwrap();
        d.add_relation(Relation::with_tuples("R2", attrs(["B", "C"]), vec![vec![7, 1]]).unwrap())
            .unwrap();
        d.add_relation(Relation::with_tuples("R3", attrs(["C", "D"]), vec![vec![1, 1]]).unwrap())
            .unwrap();
        d.add_relation(Relation::with_tuples("R4", attrs(["D", "E"]), vec![vec![1, 1]]).unwrap())
            .unwrap();
        let lex = LexRanking::new(["A", "E"], WeightAssignment::value_as_weight());
        let mut e = LexiEnumerator::new(&query(), &d, &lex).unwrap();
        assert_eq!(e.next(), None);
    }

    #[test]
    fn single_attribute_projection() {
        let q = QueryBuilder::new()
            .atom("R1", "R1", ["A", "B"])
            .atom("R2", "R2", ["B", "C"])
            .project(["A"])
            .build()
            .unwrap();
        let lex = LexRanking::new(["A"], WeightAssignment::value_as_weight());
        let results: Vec<Tuple> = LexiEnumerator::new(&q, &db(), &lex).unwrap().collect();
        assert_eq!(results, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn weights_override_value_order() {
        // Give A=3 the smallest weight so it sorts first.
        let table = [(3u64, re_ranking::Weight::new(-10.0))]
            .into_iter()
            .collect();
        let w = WeightAssignment::value_as_weight().with_table("A", table);
        let lex = LexRanking::new(["A", "E"], w);
        let results: Vec<Tuple> = LexiEnumerator::new(&query(), &db(), &lex)
            .unwrap()
            .collect();
        assert_eq!(results[0], vec![3, 1]);
    }

    #[test]
    fn pruned_subtrees_still_filter_dangling_tuples() {
        // π_a(R(a,b) ⋈ S(b,c)) with no joining tuples: S owns no projection
        // attribute, so it is pruned from the join tree — but its semi-join
        // filter must still apply (the full reducer has to run *before*
        // pruning). A prune-first implementation wrongly emits [1].
        let mut d = Database::new();
        d.add_relation(Relation::with_tuples("R", attrs(["a", "b"]), vec![vec![1, 9]]).unwrap())
            .unwrap();
        d.add_relation(Relation::with_tuples("S", attrs(["b", "c"]), vec![vec![5, 5]]).unwrap())
            .unwrap();
        let q = QueryBuilder::new()
            .atom("R", "R", ["a", "b"])
            .atom("S", "S", ["b", "c"])
            .project(["a"])
            .build()
            .unwrap();
        let lex = LexRanking::new(["a"], WeightAssignment::value_as_weight());
        let results: Vec<Tuple> = LexiEnumerator::new(&q, &d, &lex).unwrap().collect();
        assert_eq!(results, Vec::<Tuple>::new());
    }
}
