//! The process-wide metrics registry.
//!
//! A [`MetricsRegistry`] is a named collection of [`AtomicHistogram`]s and
//! monotone counters. Lookup by name takes a lock and may allocate, so hot
//! paths resolve their instrument **once** (at construction or span entry)
//! and hold the returned `Arc`; recording through the `Arc` is lock- and
//! allocation-free.
//!
//! [`global()`] returns the singleton registry that spans, server op
//! timers and cursor delay tracking all record into. Being process-wide,
//! it is shared by every server and test in the process and is never
//! reset — consumers must treat its contents as monotone and assert on
//! deltas or lower bounds, exactly like `SharedStats` consumers do.

use crate::hist::{AtomicHistogram, HistSnapshot};
use crate::trace::Trace;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Recover a read guard from a poisoned registry lock.
///
/// Every value behind the registry's locks is an `Arc`/`BTreeMap` insert —
/// a panic mid-operation cannot leave them half-written in a way a reader
/// could observe, so poisoning only records that *some* thread panicked
/// (e.g. an injected fault). Metrics must keep flowing during incidents —
/// that is when they are read — so the policy is: recover, never propagate.
fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Recover a write guard from a poisoned registry lock; same policy as
/// [`read_recover`].
fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// How many completed traces the registry retains, oldest evicted first.
/// Small on purpose: traces are a debugging tool, not storage — a slow
/// query's trace should still be in the ring when the operator comes
/// looking after the slow-query log line.
pub const TRACE_RING_CAPACITY: usize = 32;

/// A named set of histograms and counters, plus a bounded ring of recent
/// completed traces.
///
/// `BTreeMap` keeps exposition output in a stable, sorted order.
#[derive(Default)]
pub struct MetricsRegistry {
    hists: RwLock<BTreeMap<String, Arc<AtomicHistogram>>>,
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    traces: RwLock<VecDeque<Arc<Trace>>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`global()`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram registered under `name`, creating it on first use.
    /// Takes a lock — call once and cache the `Arc` near hot paths.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        if let Some(h) = read_recover(&self.hists).get(name) {
            return Arc::clone(h);
        }
        let mut map = write_recover(&self.hists);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }

    /// The monotone counter registered under `name`, creating it on first
    /// use. Same locking caveat as [`histogram`](Self::histogram).
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = read_recover(&self.counters).get(name) {
            return Arc::clone(c);
        }
        let mut map = write_recover(&self.counters);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Snapshot every registered histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistSnapshot)> {
        read_recover(&self.hists)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Snapshot every registered counter, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        read_recover(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Retain a completed trace in the bounded ring, evicting the oldest
    /// once [`TRACE_RING_CAPACITY`] is reached.
    pub fn push_trace(&self, trace: Arc<Trace>) {
        let mut ring = write_recover(&self.traces);
        if ring.len() == TRACE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent_traces(&self) -> Vec<Arc<Trace>> {
        read_recover(&self.traces).iter().cloned().collect()
    }

    /// The most recently completed retained trace.
    pub fn latest_trace(&self) -> Option<Arc<Trace>> {
        read_recover(&self.traces).back().cloned()
    }
}

/// The process-wide registry all instruments record into. Never resets;
/// assert on deltas, not absolute values.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_lookup_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("x.latency_ns");
        let b = reg.histogram("x.latency_ns");
        a.record(7);
        b.record(9);
        assert_eq!(reg.histogram("x.latency_ns").snapshot().count(), 2);
        assert_eq!(reg.histograms().len(), 1);
    }

    #[test]
    fn counters_accumulate_and_list_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.total").fetch_add(2, Ordering::Relaxed);
        reg.counter("a.total").fetch_add(1, Ordering::Relaxed);
        reg.counter("b.total").fetch_add(3, Ordering::Relaxed);
        let counters = reg.counters_snapshot();
        assert_eq!(
            counters,
            vec![("a.total".to_string(), 1), ("b.total".to_string(), 5)]
        );
    }

    #[test]
    fn trace_ring_is_bounded_and_ordered() {
        let reg = MetricsRegistry::new();
        for i in 0..(TRACE_RING_CAPACITY + 3) {
            let ctx = crate::trace::TraceCtx::new(&format!("t{i}"));
            reg.push_trace(Arc::new(ctx.finish()));
        }
        let ring = reg.recent_traces();
        assert_eq!(ring.len(), TRACE_RING_CAPACITY);
        assert_eq!(ring[0].name, "t3", "oldest traces evicted first");
        assert_eq!(
            reg.latest_trace().unwrap().name,
            format!("t{}", TRACE_RING_CAPACITY + 2)
        );
    }

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("poison.total").fetch_add(1, Ordering::Relaxed);
        reg.histogram("poison.ns").record(5);
        // Poison every registry lock: panic while holding the write guard.
        for _ in 0..3 {
            let reg = Arc::clone(&reg);
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _h = reg.hists.write().unwrap();
                let _c = reg.counters.write().unwrap();
                let _t = reg.traces.write().unwrap();
                panic!("poison the registry locks");
            }));
        }
        assert!(reg.hists.is_poisoned(), "the panic poisoned the lock");
        // Every accessor still works and sees the pre-panic state.
        reg.counter("poison.total").fetch_add(2, Ordering::Relaxed);
        assert_eq!(
            reg.counters_snapshot(),
            vec![("poison.total".to_string(), 3)]
        );
        assert_eq!(reg.histogram("poison.ns").snapshot().count(), 1);
        assert_eq!(reg.histograms().len(), 1);
        let ctx = crate::trace::TraceCtx::new("after-poison");
        reg.push_trace(Arc::new(ctx.finish()));
        assert_eq!(reg.latest_trace().unwrap().name, "after-poison");
        assert_eq!(reg.recent_traces().len(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let h = global().histogram("test.registry.singleton_ns");
        h.record(1);
        let snap = global()
            .histograms()
            .into_iter()
            .find(|(n, _)| n == "test.registry.singleton_ns")
            .map(|(_, s)| s)
            .unwrap();
        // Another test in the process may have recorded too: lower bound.
        assert!(snap.count() >= 1);
    }
}
