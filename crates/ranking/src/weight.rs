//! Totally ordered weights.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg};

/// A weight value with a *total* order.
///
/// Weights are `f64` under the hood but ordered with [`f64::total_cmp`], so
/// they can be used as keys of binary heaps and B-tree maps without the
/// partial-order footguns of raw floats. All weights produced by the data
/// generators are finite.
#[derive(Clone, Copy, Debug, Default)]
pub struct Weight(pub f64);

impl Weight {
    /// The zero weight.
    pub const ZERO: Weight = Weight(0.0);

    /// Construct from a raw `f64`. Negative zero is normalised to positive
    /// zero so that arithmetically equal weights compare equal under the
    /// total order.
    pub fn new(w: f64) -> Self {
        Weight(w + 0.0)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl PartialEq for Weight {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Weight {
    type Output = Weight;
    fn add(self, rhs: Weight) -> Weight {
        Weight::new(self.0 + rhs.0)
    }
}

impl AddAssign for Weight {
    fn add_assign(&mut self, rhs: Weight) {
        *self = *self + rhs;
    }
}

impl Neg for Weight {
    type Output = Weight;
    fn neg(self) -> Weight {
        Weight::new(-self.0)
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        Weight::new(iter.map(|w| w.0).sum())
    }
}

impl From<f64> for Weight {
    fn from(w: f64) -> Self {
        Weight::new(w)
    }
}

impl From<u64> for Weight {
    fn from(w: u64) -> Self {
        Weight(w as f64)
    }
}

impl From<i64> for Weight {
    fn from(w: i64) -> Self {
        Weight(w as f64)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_matches_f64() {
        assert!(Weight(1.0) < Weight(2.0));
        assert!(Weight(-1.0) < Weight(0.0));
        assert_eq!(Weight(3.0), Weight(3.0));
        let mut v = vec![Weight(2.0), Weight(-1.0), Weight(0.5)];
        v.sort();
        assert_eq!(v, vec![Weight(-1.0), Weight(0.5), Weight(2.0)]);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Weight(1.5) + Weight(2.5), Weight(4.0));
        let s: Weight = vec![Weight(1.0), Weight(2.0), Weight(3.0)].into_iter().sum();
        assert_eq!(s, Weight(6.0));
        assert_eq!(-Weight(2.0), Weight(-2.0));
        let mut w = Weight(1.0);
        w += Weight(1.0);
        assert_eq!(w, Weight(2.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Weight::from(3u64), Weight(3.0));
        assert_eq!(Weight::from(-4i64), Weight(-4.0));
        assert_eq!(Weight::from(0.25f64).value(), 0.25);
        assert_eq!(Weight::ZERO, Weight(0.0));
    }
}
