//! Preprocessing wall-time: serial vs. pooled GHD bag materialisation.
//!
//! PR 1 measured bag materialisation dominating 6/8-cycle preprocessing;
//! this bench pins the speedup the `re_exec` engine buys on exactly that
//! hot spot: the 6-cycle DBLP workload's `CyclicEnumerator` construction
//! (bag semi-join sweeps + hash joins + distinct projections + full
//! reducer of the residual query), serial vs. pooled at 2 and
//! machine-many threads.
//!
//! Every pooled run is checked to produce the same `bag_sizes` and the
//! same top answers as the serial run before its time is accepted — a
//! speedup that changed the output would be a bug, not a result.
//!
//! It also pins the worst-case-optimal bag-materialisation PR: 6-cycle
//! time-to-first-answer under the old pipeline (the Figure-2 GHD template
//! materialised by the pairwise hash-join cascade) against the new one
//! (the cost-based two-arc split materialised by the generic-join kernel).
//! Both runs must produce the same first answer; `check_bench` gates the
//! speedup at >= 10x.
//!
//! Results go to stdout as a table and to `BENCH_preprocess.json` in the
//! repo root (schema: workload, edges, serial_ms, runs[{threads, ms,
//! speedup}], ttf{old_ms, new_ms, speedup}).

use rankedenum_core::{CyclicEnumerator, ExecContext, WorkerPool};
use re_bench::Scale;
use re_join::BagKernel;
use re_storage::Tuple;
use re_workloads::membership::WeightScheme;
use re_workloads::{cyclic, DblpWorkload};
use std::time::{Duration, Instant};

const SAMPLES: usize = 3;
const CHECK_ANSWERS: usize = 50;

struct Measured {
    millis: f64,
    bag_sizes: Vec<usize>,
    top: Vec<Tuple>,
}

fn measure(
    dblp: &DblpWorkload,
    spec: &re_workloads::QuerySpec,
    plan: &re_query::GhdPlan,
    ctx: &ExecContext,
) -> Measured {
    let mut best = Duration::MAX;
    let mut bag_sizes = Vec::new();
    let mut top = Vec::new();
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let e = CyclicEnumerator::new_ctx(&spec.query, dblp.db(), spec.sum_ranking(), plan, ctx)
            .expect("cyclic preprocessing");
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        bag_sizes = e.bag_sizes().to_vec();
        top = e.take(CHECK_ANSWERS).collect();
    }
    Measured {
        millis: best.as_secs_f64() * 1_000.0,
        bag_sizes,
        top,
    }
}

/// Time-to-first-answer: enumerator construction (the full preprocessing
/// pass under `kernel`) plus the first `next()`.
fn time_to_first(
    dblp: &DblpWorkload,
    spec: &re_workloads::QuerySpec,
    plan: &re_query::GhdPlan,
    kernel: BagKernel,
) -> (f64, Option<Tuple>) {
    let ctx = ExecContext::serial();
    let mut best = Duration::MAX;
    let mut first = None;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let mut e = CyclicEnumerator::new_ctx_with_kernel(
            &spec.query,
            dblp.db(),
            spec.sum_ranking(),
            plan,
            &ctx,
            kernel,
        )
        .expect("cyclic preprocessing");
        first = e.next();
        best = best.min(start.elapsed());
    }
    (best.as_secs_f64() * 1_000.0, first)
}

fn main() {
    let factor = Scale::from_env().factor();
    let edges = 2_200 * factor;
    let dblp = DblpWorkload::generate(edges, 42, WeightScheme::Random);
    let (spec, plan) = dblp.cycle(3); // the 6-cycle

    let serial = measure(&dblp, &spec, &plan, &ExecContext::serial());
    println!(
        "preprocess/{}/serial: {:.1} ms (bags: {:?}, machine threads: {})",
        spec.name,
        serial.millis,
        serial.bag_sizes,
        re_exec::machine_threads()
    );

    // pooled-1 isolates the parallel algorithms' intrinsic overhead from
    // the core count; 2 and the machine size show the actual scaling.
    let machine = re_exec::machine_threads();
    let mut thread_counts = vec![1, 2];
    if machine > 2 {
        thread_counts.push(machine);
    }

    let mut runs = Vec::new();
    for &threads in &thread_counts {
        let ctx = ExecContext::pooled(WorkerPool::new(threads));
        let pooled = measure(&dblp, &spec, &plan, &ctx);
        assert_eq!(
            pooled.bag_sizes, serial.bag_sizes,
            "pooled preprocessing changed the bag sizes"
        );
        assert_eq!(
            pooled.top, serial.top,
            "pooled preprocessing changed the answers"
        );
        let speedup = serial.millis / pooled.millis;
        println!(
            "preprocess/{}/pooled-{threads}: {:.1} ms  ({speedup:.2}x vs serial)",
            spec.name, pooled.millis
        );
        runs.push((threads, pooled.millis, speedup));
    }
    if machine < 2 {
        println!(
            "note: this machine exposes a single core — pooled runs can at \
             best tie serial here; the pooled-1 ratio above is the parallel \
             kernels' intrinsic overhead, which is what multicore speedup \
             is bounded by."
        );
    }

    // Old pipeline vs. new: the Figure-2 template under the hash-join
    // cascade against the cost-chosen plan under the generic-join kernel.
    // `dblp.cycle` already returns the cost-based plan; the Figure-2
    // template is rebuilt explicitly as the "old" side.
    let figure2 = cyclic::membership_cycle_plan(&spec.query).expect("figure-2 plan");
    let (old_ms, old_first) = time_to_first(&dblp, &spec, &figure2, BagKernel::Cascade);
    let (new_ms, new_first) = time_to_first(&dblp, &spec, &plan, BagKernel::Wcoj);
    assert_eq!(
        old_first, new_first,
        "the old and new pipelines disagree on the first answer"
    );
    let ttf_speedup = old_ms / new_ms;
    println!(
        "preprocess/{}/ttf: old (figure-2 + cascade) {old_ms:.1} ms, \
         new (cost-based [{}] + wcoj) {new_ms:.1} ms  ({ttf_speedup:.1}x)",
        spec.name,
        plan.shape()
    );

    let runs_json: Vec<String> = runs
        .iter()
        .map(|(threads, ms, speedup)| {
            format!("{{\"threads\":{threads},\"ms\":{ms:.3},\"speedup\":{speedup:.3}}}")
        })
        .collect();
    let json = format!(
        "{{\"workload\":\"{}\",\"edges\":{edges},\"machine_threads\":{machine},\
         \"plan\":\"{}\",\"bag_sizes\":{:?},\"serial_ms\":{:.3},\"runs\":[{}],\
         \"ttf\":{{\"old_ms\":{old_ms:.3},\"new_ms\":{new_ms:.3},\
         \"speedup\":{ttf_speedup:.3}}}}}\n",
        spec.name,
        plan.shape(),
        serial.bag_sizes,
        serial.millis,
        runs_json.join(",")
    );
    // The repo root is two levels above the bench crate.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_preprocess.json");
    std::fs::write(&out, json).expect("write BENCH_preprocess.json");
    println!("wrote {}", out.display());
}
