//! CI perf guard over `BENCH_lexi.json`.
//!
//! Compares the freshly written `BENCH_lexi.json` (produced by the
//! `lexi_vs_general` bench) against the committed baseline
//! `BENCH_lexi_baseline.json` and fails on a regression of the lexi
//! time-to-1000. Absolute milliseconds vary with the machine — this
//! container pins the process to a single core — so the guard compares
//! the machine-invariant **ratio** `new_ms / general_ms` per query at
//! k = 1000: both engines run on the same data in the same process, so
//! their quotient cancels the hardware out. Two checks:
//!
//! 1. **Ordering** — the index-backed lexi engine must not be slower than
//!    the general algorithm on DBLP2hop at k = 1000 (the PR 1 inversion
//!    must stay closed; a 10% measurement-noise allowance applies).
//! 2. **Ratio regression** — per query, the fresh `new/general` ratio may
//!    exceed the baseline ratio by at most 25%.

use std::path::Path;
use std::process::exit;

/// Tolerated relative regression of the lexi/general ratio.
const TOLERANCE: f64 = 0.25;
/// Noise allowance on the ordering check (single pinned core).
const ORDERING_SLACK: f64 = 0.10;

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    query: String,
    k: u64,
    old_ms: f64,
    new_ms: f64,
    general_ms: f64,
}

/// Extract the next `"field":value` number after `from` in `s`.
fn field_f64(obj: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = obj.find(&needle)? + needle.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(obj: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = obj.find(&needle)? + needle.len();
    let rest = &obj[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parse the flat schema `lexi_vs_general` writes. Deliberately minimal —
/// the workspace has no serde, and the file is machine-written with a
/// fixed shape.
fn parse(content: &str) -> Vec<Entry> {
    let mut entries = Vec::new();
    let Some(arr_start) = content.find("\"entries\":[") else {
        return entries;
    };
    let mut rest = &content[arr_start..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let (Some(query), Some(k), Some(old_ms), Some(new_ms), Some(general_ms)) = (
            field_str(obj, "query"),
            field_f64(obj, "k"),
            field_f64(obj, "old_ms"),
            field_f64(obj, "new_ms"),
            field_f64(obj, "general_ms"),
        ) {
            entries.push(Entry {
                query,
                k: k as u64,
                old_ms,
                new_ms,
                general_ms,
            });
        }
        rest = &rest[open + close + 1..];
    }
    entries
}

fn load(path: &Path) -> Vec<Entry> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("check_bench: cannot read {}: {e}", path.display());
            exit(1);
        }
    };
    let entries = parse(&content);
    if entries.is_empty() {
        eprintln!("check_bench: no entries parsed from {}", path.display());
        exit(1);
    }
    entries
}

fn at_k1000<'a>(entries: &'a [Entry], query: &str) -> Option<&'a Entry> {
    entries.iter().find(|e| e.query == query && e.k == 1_000)
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let fresh = load(&root.join("BENCH_lexi.json"));
    let baseline = load(&root.join("BENCH_lexi_baseline.json"));

    let mut failures: Vec<String> = Vec::new();

    // Check 1: the paper's ordering holds on DBLP2hop at k = 1000.
    match at_k1000(&fresh, "DBLP2hop") {
        None => failures.push("fresh BENCH_lexi.json has no DBLP2hop k=1000 entry".into()),
        Some(e) => {
            if e.new_ms > e.general_ms * (1.0 + ORDERING_SLACK) {
                failures.push(format!(
                    "DBLP2hop k=1000: lexi ({:.2} ms) slower than general ({:.2} ms) — \
                     the PR 1 inversion is back",
                    e.new_ms, e.general_ms
                ));
            } else {
                println!(
                    "ok: DBLP2hop k=1000 lexi {:.2} ms <= general {:.2} ms ({:.2}x), \
                     old engine {:.2} ms ({:.2}x vs new)",
                    e.new_ms,
                    e.general_ms,
                    e.general_ms / e.new_ms,
                    e.old_ms,
                    e.old_ms / e.new_ms
                );
            }
        }
    }

    // Check 2: per-query ratio regression against the committed baseline.
    for base in baseline.iter().filter(|e| e.k == 1_000) {
        let Some(now) = at_k1000(&fresh, &base.query) else {
            failures.push(format!(
                "{} k=1000 present in baseline but missing from fresh run",
                base.query
            ));
            continue;
        };
        let base_ratio = base.new_ms / base.general_ms;
        let now_ratio = now.new_ms / now.general_ms;
        if now_ratio > base_ratio * (1.0 + TOLERANCE) {
            failures.push(format!(
                "{} k=1000: lexi/general ratio regressed {:.3} -> {:.3} (> {:.0}% tolerance)",
                base.query,
                base_ratio,
                now_ratio,
                TOLERANCE * 100.0
            ));
        } else {
            println!(
                "ok: {} k=1000 lexi/general ratio {:.3} (baseline {:.3}, tolerance {:.0}%)",
                base.query,
                now_ratio,
                base_ratio,
                TOLERANCE * 100.0
            );
        }
    }

    if failures.is_empty() {
        println!("check_bench: all perf guards passed");
    } else {
        for f in &failures {
            eprintln!("check_bench FAILURE: {f}");
        }
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"edges\":5000,\"machine_threads\":1,\"entries\":[\
        {\"query\":\"DBLP2hop\",\"k\":10,\"old_ms\":1.5,\"new_ms\":3.0,\"general_ms\":7.0},\
        {\"query\":\"DBLP2hop\",\"k\":1000,\"old_ms\":20.0,\"new_ms\":2.7,\"general_ms\":7.1}]}";

    #[test]
    fn parses_the_flat_schema() {
        let entries = parse(SAMPLE);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].query, "DBLP2hop");
        assert_eq!(entries[1].k, 1000);
        assert_eq!(entries[1].old_ms, 20.0);
        assert_eq!(entries[1].new_ms, 2.7);
        assert_eq!(entries[1].general_ms, 7.1);
        assert_eq!(at_k1000(&entries, "DBLP2hop"), Some(&entries[1]));
        assert_eq!(at_k1000(&entries, "DBLP3hop"), None);
    }

    #[test]
    fn field_extractors_handle_missing_fields() {
        assert_eq!(field_f64("{\"a\":1.25}", "a"), Some(1.25));
        assert_eq!(field_f64("{\"a\":1.25}", "b"), None);
        assert_eq!(field_str("{\"q\":\"X\"}", "q"), Some("X".into()));
        assert_eq!(field_str("{\"q\":3}", "q"), None);
        assert!(parse("{}").is_empty());
    }
}
