//! Reactor front-end integration: idle cost, pipelining order, both
//! transports on both front-ends, and the reactor's own metrics.

use re_server::{
    serve, serve_threaded, LocalClient, RankedQueryServer, Request, Response, ServerConfig,
    TcpClient, Transport, WireProtocol,
};
use re_storage::{attr::attrs, Database, Relation};
use std::sync::Arc;
use std::time::Duration;

fn coauthor_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for paper in 0..12u64 {
        for slot in 0..4u64 {
            rows.push(vec![(paper * 3 + slot * 7) % 40, 1000 + paper]);
        }
    }
    db.add_relation(Relation::with_tuples("AP", attrs(["aid", "pid"]), rows).unwrap())
        .unwrap();
    db
}

const TWO_HOP: &str = "SELECT DISTINCT AP1.aid, AP2.aid FROM AP AS AP1, AP AS AP2 \
                       WHERE AP1.pid = AP2.pid ORDER BY AP1.aid + AP2.aid";

fn reactor_server() -> (Arc<RankedQueryServer>, re_server::ServerHandle) {
    let config = ServerConfig::default();
    let server = RankedQueryServer::new(config.clone());
    server.catalog().register("dblp", coauthor_db());
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", &config).unwrap();
    (server, handle)
}

fn sample(body: &str, metric: &str) -> f64 {
    body.lines()
        .find(|l| l.split(' ').next() == Some(metric))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// The tentpole's economics: a parked session on an idle reactor
/// connection costs **zero** syscalls — no periodic wakeups, no polling
/// ticks. The poll wait is infinite until a readable fd or the wakeup
/// pipe fires.
#[test]
fn idle_reactor_connection_causes_no_wakeups() {
    let (server, handle) = reactor_server();
    let mut tcp = TcpClient::connect_json(handle.addr()).unwrap();
    let opened = tcp.open("dblp", TWO_HOP).unwrap();
    let first = tcp.fetch(opened.session, 3).unwrap();
    assert_eq!(first.rows.len(), 3);

    // Stats over the in-process client: reading them must not touch the
    // reactor, so an idle window shows a frozen epoll_waits/wakeups pair.
    let mut local = LocalClient::new(Arc::clone(&server));
    let before = local.stats().unwrap().transport;
    std::thread::sleep(Duration::from_millis(300));
    let after = local.stats().unwrap().transport;
    assert_eq!(
        (after.epoll_waits, after.wakeups),
        (before.epoll_waits, before.wakeups),
        "an idle reactor with a parked session must not wake up at all"
    );

    // The connection is parked, not dead: the next fetch resumes the
    // cursor exactly where it stopped.
    let second = tcp.fetch(opened.session, 3).unwrap();
    assert_eq!(second.rows.len(), 3);
    assert_ne!(first.rows, second.rows);
    let final_stats = local.stats().unwrap().transport;
    assert!(final_stats.epoll_waits > after.epoll_waits);
    tcp.close(opened.session).unwrap();
    handle.shutdown();
}

/// Pipelined requests of mixed types come back strictly in submission
/// order, one response per request.
#[test]
fn pipelined_mixed_requests_answer_in_order() {
    let (_server, handle) = reactor_server();
    for protocol in [WireProtocol::Json, WireProtocol::Binary] {
        let mut client = TcpClient::connect_with(handle.addr(), protocol).unwrap();
        let responses = client
            .pipeline(&[
                Request::Ping,
                Request::Catalog,
                Request::Close { session: 999_999 },
                Request::Ping,
            ])
            .unwrap();
        assert_eq!(responses.len(), 4, "{protocol:?}");
        assert_eq!(responses[0], Response::Pong);
        assert_eq!(
            responses[1],
            Response::Catalog {
                databases: vec!["dblp".into()]
            }
        );
        assert_eq!(responses[2], Response::Closed { existed: false });
        assert_eq!(responses[3], Response::Pong);
    }
    handle.shutdown();
}

/// The thread-per-connection front-end stays available behind
/// `ServerTransport::ThreadPerConn` and speaks both protocols too (it is
/// the bench baseline and the fallback).
#[test]
fn thread_per_conn_front_end_serves_both_protocols() {
    let config = ServerConfig::default();
    let server = RankedQueryServer::new(config.clone());
    server.catalog().register("dblp", coauthor_db());
    let handle = serve_threaded(Arc::clone(&server), "127.0.0.1:0", &config).unwrap();

    for protocol in [WireProtocol::Json, WireProtocol::Binary] {
        let mut client = TcpClient::connect_with(handle.addr(), protocol).unwrap();
        let opened = client.open("dblp", TWO_HOP).unwrap();
        let page = client.fetch(opened.session, 4).unwrap();
        assert_eq!(page.rows.len(), 4, "{protocol:?}");
        assert!(client.close(opened.session).unwrap());
        // Pipelining works on the blocking front-end as well: requests
        // are drained per read and answered in order.
        let responses = client
            .pipeline(&[Request::Ping, Request::Ping, Request::Ping])
            .unwrap();
        assert_eq!(responses, vec![Response::Pong; 3], "{protocol:?}");
    }
    handle.shutdown();
}

/// The `RE_TRANSPORT` knob selects the client protocol end to end.
#[test]
fn env_var_selects_the_client_protocol() {
    // Avoid mutating the process environment (other tests run in
    // parallel): only assert the default resolution plus the explicit
    // constructors, and exercise an env-style binary client directly.
    let (_server, handle) = reactor_server();
    let mut binary = TcpClient::connect_binary(handle.addr()).unwrap();
    assert_eq!(binary.protocol(), WireProtocol::Binary);
    assert_eq!(binary.request(Request::Ping).unwrap(), Response::Pong);
    let mut json = TcpClient::connect_json(handle.addr()).unwrap();
    assert_eq!(json.protocol(), WireProtocol::Json);
    assert_eq!(json.request(Request::Ping).unwrap(), Response::Pong);
    handle.shutdown();
}

/// The reactor exports its transport counters through the Prometheus
/// exposition (`re_reactor_*`) and the stats report.
#[test]
fn reactor_counters_flow_into_stats_and_metrics() {
    let (_server, handle) = reactor_server();
    let mut client = TcpClient::connect_binary(handle.addr()).unwrap();
    let outcome = client.query("dblp", &format!("{TWO_HOP} LIMIT 5")).unwrap();
    assert_eq!(outcome.rows.len(), 5);

    let stats = client.stats().unwrap().transport;
    assert!(stats.conns_accepted >= 1);
    assert!(stats.epoll_waits >= 1);
    assert!(stats.bytes_in > 0);
    assert!(stats.bytes_out > 0);

    let body = client.metrics().unwrap();
    re_obs::validate_exposition(&body).expect("well-formed exposition");
    assert!(sample(&body, "re_reactor_conns_accepted") >= 1.0);
    assert!(sample(&body, "re_reactor_epoll_waits") >= 1.0);
    assert!(sample(&body, "re_reactor_bytes_in") > 0.0);
    assert!(sample(&body, "re_reactor_bytes_out") > 0.0);
    handle.shutdown();
}

/// Dropping a connection with a parked (not mid-fetch) session leaves the
/// session resumable from a new connection — disconnect teardown only
/// cancels cursors that are checked out at that moment.
#[test]
fn parked_sessions_survive_a_disconnect_and_resume_elsewhere() {
    let (_server, handle) = reactor_server();
    let session = {
        let mut first = TcpClient::connect_binary(handle.addr()).unwrap();
        let opened = first.open("dblp", TWO_HOP).unwrap();
        let page = first.fetch(opened.session, 2).unwrap();
        assert_eq!(page.rows.len(), 2);
        opened.session
        // `first` drops here: TCP FIN reaches the reactor, which tears
        // the connection down without touching the parked cursor.
    };
    std::thread::sleep(Duration::from_millis(100));
    let mut second = TcpClient::connect_json(handle.addr()).unwrap();
    let resumed = second.fetch(session, 2).unwrap();
    assert_eq!(resumed.rows.len(), 2);
    assert!(second.close(session).unwrap());
    handle.shutdown();
}
