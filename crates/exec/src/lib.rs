//! # re_exec — morsel-driven parallel execution engine
//!
//! Preprocessing is the heavy phase of ranked enumeration: the full
//! reducer, the GHD bag materialisation and the projection/dedup passes all
//! scan and hash millions of tuples before the first answer can be
//! emitted. This crate provides the machinery to spread that work over all
//! cores **without changing a single output byte**:
//!
//! * [`WorkerPool`] — a work-stealing pool of `std` threads (no external
//!   dependencies) with helping callers, nested-submission support and
//!   execution counters ([`PoolStats`]);
//! * [`ExecContext`] — the serial-or-pooled handle kernels take;
//!   [`ExecContext::map`] fans an index space out and merges results *by
//!   index*, which is the whole determinism story: parallel kernels built
//!   on it are byte-identical to their serial counterparts at any thread
//!   count.
//!
//! The relational kernels themselves (partitioned hash join, parallel
//! semi-join, parallel distinct-projection, parallel bag materialisation)
//! live in `re_join`, which builds them on these primitives and chunks
//! their inputs with `re_storage::Relation::chunks` (zero-copy morsel
//! views).

pub mod cancel;
pub mod context;
pub mod pool;

pub use cancel::{CancelKind, CancelToken};
pub use context::{
    machine_threads, ExecContext, DEFAULT_MIN_PAR_ROWS, DEFAULT_MORSEL_ROWS, THREADS_ENV,
};
pub use pool::{current_worker, default_thread_count, PoolStats, WorkerPool, WorkerStat};
