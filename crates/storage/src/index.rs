//! Hash indexes over relations.
//!
//! The enumeration algorithms rely on constant-time lookups of tuples by a
//! subset of their attributes (the *anchor* attributes of a join-tree node)
//! and on degree information (how many tuples share a key) for the
//! heavy/light split of the star-query algorithm.

use crate::attr::Attr;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::value::{Tuple, Value};
use std::collections::HashMap;

/// A hash index from key tuples (values of a column subset) to the row ids
/// of matching tuples.
#[derive(Clone, Debug)]
pub struct HashIndex {
    key_attrs: Vec<Attr>,
    key_positions: Vec<usize>,
    map: HashMap<Tuple, Vec<u32>>,
}

impl HashIndex {
    /// Build an index over `relation` keyed on `key_attrs`.
    pub fn build(relation: &Relation, key_attrs: &[Attr]) -> Result<Self, StorageError> {
        let key_positions = relation.positions(key_attrs)?;
        let mut map: HashMap<Tuple, Vec<u32>> = HashMap::with_capacity(relation.len());
        for (i, t) in relation.iter().enumerate() {
            let key: Tuple = key_positions.iter().map(|&p| t[p]).collect();
            map.entry(key).or_default().push(i as u32);
        }
        Ok(HashIndex {
            key_attrs: key_attrs.to_vec(),
            key_positions,
            map,
        })
    }

    /// The attributes this index is keyed on.
    pub fn key_attrs(&self) -> &[Attr] {
        &self.key_attrs
    }

    /// Positions of the key attributes in the indexed relation.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Row ids matching a key, or an empty slice.
    pub fn get(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate over `(key, row ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &Vec<u32>)> + '_ {
        self.map.iter()
    }

    /// Extract the key of an arbitrary tuple of the indexed relation.
    pub fn key_of(&self, tuple: &[Value]) -> Tuple {
        self.key_positions.iter().map(|&p| tuple[p]).collect()
    }
}

/// A grouped-adjacency index: row ids grouped by key in one flat buffer.
///
/// Functionally a [`HashIndex`] (key tuple → matching row ids), but the
/// per-key lists live contiguously in a single `Vec<u32>` with the map only
/// holding `(offset, len)` slots. This is the shape the enumeration hot
/// paths want: building it is one grouping pass with exactly one allocation
/// per distinct key (the key tuple itself), probing it is a hash lookup
/// returning a slice, and iterating a group is a linear scan — no
/// per-key `Vec` headers, no pointer chasing.
///
/// Layout contract (what makes parallel builds byte-identical to serial
/// ones): groups are laid out in **first-occurrence order** of their key,
/// and within a group row ids are in **ascending storage order**.
#[derive(Clone, Debug)]
pub struct SortedIndex {
    key_attrs: Vec<Attr>,
    key_positions: Vec<usize>,
    /// `(offset, len)` into `rows` per key.
    groups: HashMap<Tuple, (u32, u32)>,
    /// All row ids, grouped per key.
    rows: Vec<u32>,
}

impl SortedIndex {
    /// Build an index over `relation` keyed on `key_attrs`.
    pub fn build(relation: &Relation, key_attrs: &[Attr]) -> Result<Self, StorageError> {
        let key_positions = relation.positions(key_attrs)?;
        // Two-pass grouping: bucket per key first, then flatten. The
        // intermediate map reuses the probe buffer so only distinct keys
        // allocate.
        let mut buckets: HashMap<Tuple, Vec<u32>> = HashMap::new();
        let mut order: Vec<Tuple> = Vec::new();
        let mut key: Tuple = Vec::with_capacity(key_positions.len());
        for (i, t) in relation.iter().enumerate() {
            key.clear();
            key.extend(key_positions.iter().map(|&p| t[p]));
            if let Some(ids) = buckets.get_mut(key.as_slice()) {
                ids.push(i as u32);
            } else {
                buckets.insert(key.clone(), vec![i as u32]);
                order.push(key.clone());
            }
        }
        Ok(Self::from_grouped(
            key_attrs.to_vec(),
            key_positions,
            order.into_iter().map(|k| {
                let ids = buckets.remove(&k).expect("ordered key was bucketed");
                (k, ids)
            }),
            relation.len(),
        ))
    }

    /// Assemble an index from pre-grouped `(key, ascending row ids)` pairs
    /// in first-occurrence order — the constructor parallel builders use
    /// after their deterministic merge.
    pub fn from_grouped(
        key_attrs: Vec<Attr>,
        key_positions: Vec<usize>,
        grouped: impl IntoIterator<Item = (Tuple, Vec<u32>)>,
        total_rows: usize,
    ) -> Self {
        let mut rows: Vec<u32> = Vec::with_capacity(total_rows);
        let mut groups: HashMap<Tuple, (u32, u32)> = HashMap::new();
        for (key, ids) in grouped {
            debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "rows must ascend");
            let offset = rows.len() as u32;
            rows.extend_from_slice(&ids);
            let prev = groups.insert(key, (offset, ids.len() as u32));
            debug_assert!(prev.is_none(), "duplicate key group");
        }
        SortedIndex {
            key_attrs,
            key_positions,
            groups,
            rows,
        }
    }

    /// The attributes this index is keyed on.
    pub fn key_attrs(&self) -> &[Attr] {
        &self.key_attrs
    }

    /// Positions of the key attributes in the indexed relation.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_positions
    }

    /// Row ids matching a key (ascending storage order), or an empty slice.
    pub fn rows(&self, key: &[Value]) -> &[u32] {
        match self.groups.get(key) {
            Some(&(off, len)) => &self.rows[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &[Value]) -> bool {
        self.groups.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.groups.len()
    }

    /// Total indexed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate bytes retained by the index (length-based, so stable
    /// across runs): the flat row buffer plus one key tuple and slot per
    /// distinct key. Used for enumeration memory accounting.
    pub fn bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<u32>()
            + self.groups.len()
                * (self.key_positions.len() * std::mem::size_of::<Value>()
                    + std::mem::size_of::<Tuple>()
                    + std::mem::size_of::<(u32, u32)>())
    }
}

/// Degree statistics of one attribute of a relation: for each value, how
/// many tuples carry it. Used by the star-query heavy/light split
/// (Algorithm 4) and by the bounded-degree delay analysis (Appendix D).
#[derive(Clone, Debug)]
pub struct DegreeIndex {
    attr: Attr,
    counts: HashMap<Value, u32>,
    max_degree: u32,
}

impl DegreeIndex {
    /// Build degree statistics for `attr` over `relation`.
    pub fn build(relation: &Relation, attr: &Attr) -> Result<Self, StorageError> {
        let p = relation
            .position(attr)
            .ok_or_else(|| StorageError::UnknownAttribute {
                relation: relation.name().to_string(),
                attribute: attr.as_str().to_string(),
            })?;
        let mut counts: HashMap<Value, u32> = HashMap::new();
        for t in relation.iter() {
            *counts.entry(t[p]).or_insert(0) += 1;
        }
        let max_degree = counts.values().copied().max().unwrap_or(0);
        Ok(DegreeIndex {
            attr: attr.clone(),
            counts,
            max_degree,
        })
    }

    /// The attribute the statistics are about.
    pub fn attr(&self) -> &Attr {
        &self.attr
    }

    /// Degree of a value (0 if absent).
    pub fn degree(&self, value: Value) -> u32 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Whether a value's degree is at least the threshold (a *heavy* value in
    /// the paper's terminology).
    pub fn is_heavy(&self, value: Value, threshold: u32) -> bool {
        self.degree(value) >= threshold
    }

    /// Maximum degree over all values.
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Number of distinct values.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(value, degree)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Value, u32)> + '_ {
        self.counts.iter().map(|(&v, &d)| (v, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attrs;

    fn rel() -> Relation {
        Relation::with_tuples(
            "R",
            attrs(["A", "B"]),
            vec![vec![1, 10], vec![2, 10], vec![1, 20], vec![3, 30]],
        )
        .unwrap()
    }

    #[test]
    fn hash_index_lookup() {
        let r = rel();
        let idx = HashIndex::build(&r, &attrs(["B"])).unwrap();
        assert_eq!(idx.get(&[10]).len(), 2);
        assert_eq!(idx.get(&[20]), &[2]);
        assert_eq!(idx.get(&[99]).len(), 0);
        assert_eq!(idx.distinct_keys(), 3);
        assert!(idx.contains(&[30]));
    }

    #[test]
    fn hash_index_composite_key() {
        let r = rel();
        let idx = HashIndex::build(&r, &attrs(["A", "B"])).unwrap();
        assert_eq!(idx.get(&[1, 20]), &[2]);
        assert_eq!(idx.distinct_keys(), 4);
        assert_eq!(idx.key_of(&[7, 8]), vec![7, 8]);
    }

    #[test]
    fn hash_index_empty_key_groups_everything() {
        let r = rel();
        let idx = HashIndex::build(&r, &[]).unwrap();
        assert_eq!(idx.get(&[]).len(), 4);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn degree_index_counts() {
        let r = rel();
        let d = DegreeIndex::build(&r, &Attr::new("A")).unwrap();
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.degree(2), 1);
        assert_eq!(d.degree(42), 0);
        assert_eq!(d.max_degree(), 2);
        assert_eq!(d.distinct_values(), 3);
        assert!(d.is_heavy(1, 2));
        assert!(!d.is_heavy(2, 2));
    }

    #[test]
    fn unknown_attr_is_error() {
        let r = rel();
        assert!(HashIndex::build(&r, &attrs(["Z"])).is_err());
        assert!(DegreeIndex::build(&r, &Attr::new("Z")).is_err());
        assert!(SortedIndex::build(&r, &attrs(["Z"])).is_err());
    }

    #[test]
    fn sorted_index_matches_hash_index_groups() {
        let r = rel();
        let sorted = SortedIndex::build(&r, &attrs(["B"])).unwrap();
        let hash = HashIndex::build(&r, &attrs(["B"])).unwrap();
        for b in [10u64, 20, 30, 99] {
            assert_eq!(sorted.rows(&[b]), hash.get(&[b]), "key {b}");
            assert_eq!(sorted.contains(&[b]), hash.contains(&[b]));
        }
        assert_eq!(sorted.distinct_keys(), 3);
        assert_eq!(sorted.len(), 4);
        assert!(!sorted.is_empty());
        assert_eq!(sorted.key_attrs(), &attrs(["B"])[..]);
        assert_eq!(sorted.key_positions(), &[1]);
    }

    #[test]
    fn sorted_index_rows_ascend_and_composite_keys_work() {
        let r = Relation::with_tuples(
            "S",
            attrs(["A", "B"]),
            vec![vec![1, 7], vec![2, 7], vec![1, 7], vec![1, 8]],
        )
        .unwrap();
        let idx = SortedIndex::build(&r, &attrs(["A", "B"])).unwrap();
        assert_eq!(idx.rows(&[1, 7]), &[0, 2]);
        assert_eq!(idx.rows(&[2, 7]), &[1]);
        assert_eq!(idx.rows(&[9, 9]), &[] as &[u32]);
    }

    #[test]
    fn sorted_index_empty_key_groups_everything() {
        let r = rel();
        let idx = SortedIndex::build(&r, &[]).unwrap();
        assert_eq!(idx.rows(&[]), &[0, 1, 2, 3]);
        assert_eq!(idx.distinct_keys(), 1);
    }
}
