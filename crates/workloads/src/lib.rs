//! The paper's concrete query workloads, wired to the synthetic datasets.
//!
//! Each workload module builds a [`re_storage::Database`] from the
//! `re-datagen` generators and exposes the queries the paper evaluates as
//! [`QuerySpec`]s (query + weight assignment), so the examples, integration
//! tests and benchmarks all run exactly the same workloads:
//!
//! * [`dblp`] / [`imdb`] — the small-scale network-analysis queries of
//!   Figure 4 / Figure 11 (2-hop, 3-hop, 4-hop, 3-star) plus the cyclic
//!   queries of Section 6.2.2 (4/6/8-cycle, bowtie),
//! * [`social`] — the large-scale Friendster / Memetracker style 2-hop and
//!   3-hop neighbourhood queries (Figure 8),
//! * [`ldbc`] — LDBC-like UCQ workloads Q3/Q10/Q11 for the scalability
//!   experiment (Figure 9).

pub mod cyclic;
pub mod dblp;
pub mod imdb;
pub mod ldbc;
pub mod membership;
pub mod social;
pub mod spec;

pub use dblp::DblpWorkload;
pub use imdb::ImdbWorkload;
pub use ldbc::LdbcWorkload;
pub use membership::MembershipWorkload;
pub use social::SocialWorkload;
pub use spec::{QuerySpec, UnionSpec};
