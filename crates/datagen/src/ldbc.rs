//! An LDBC-SNB-like synthetic social network, parameterised by a scale
//! factor, for the scalability experiment of Figure 9.
//!
//! The real benchmark's interactive queries Q3/Q10/Q11 are neighbourhood
//! analyses with `ORDER BY`/`LIMIT` over the person–knows–person graph
//! joined with messages, group memberships and work-at relations, several
//! of them as UNIONs. The generator below produces the three relations
//! those query shapes need; the concrete UCQ workloads live in
//! `re-workloads::ldbc`.

use crate::weights::random_weights;
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use re_ranking::Weight;
use re_storage::{Relation, Value};
use std::collections::{HashMap, HashSet};

/// Configuration of the LDBC-like generator.
#[derive(Clone, Debug)]
pub struct LdbcConfig {
    /// Scale factor; relation cardinalities grow linearly with it.
    pub scale_factor: usize,
    /// RNG seed.
    pub seed: u64,
}

impl LdbcConfig {
    /// Create a configuration for the given scale factor.
    pub fn new(scale_factor: usize, seed: u64) -> Self {
        LdbcConfig { scale_factor, seed }
    }

    fn persons(&self) -> usize {
        (self.scale_factor * 300).max(50)
    }

    fn knows_edges(&self) -> usize {
        self.scale_factor * 2_000
    }

    fn posts(&self) -> usize {
        self.scale_factor * 1_000
    }

    fn likes_edges(&self) -> usize {
        self.scale_factor * 3_000
    }

    fn forums(&self) -> usize {
        (self.scale_factor * 50).max(10)
    }

    fn member_edges(&self) -> usize {
        self.scale_factor * 1_500
    }
}

/// The generated LDBC-like instance.
#[derive(Clone, Debug)]
pub struct LdbcDataset {
    /// `Knows(p1, p2)` — the friendship graph (symmetric closure).
    pub knows: Relation,
    /// `PostCreator(post, person)` — message authorship.
    pub post_creator: Relation,
    /// `Likes(person, post)` — likes.
    pub likes: Relation,
    /// `ForumMember(forum, person)` — group membership.
    pub forum_member: Relation,
    /// Random person weights (used as the ORDER BY score).
    pub person_weights: HashMap<Value, Weight>,
    config: LdbcConfig,
}

impl LdbcDataset {
    /// Generate the instance.
    pub fn generate(config: LdbcConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let persons = config.persons();
        let person_sampler = ZipfSampler::new(persons, 0.8);

        let mut knows = Relation::new("Knows", ["p1", "p2"]);
        let mut seen: HashSet<(Value, Value)> = HashSet::new();
        let mut attempts = 0usize;
        while seen.len() < config.knows_edges() * 2 && attempts < config.knows_edges() * 30 {
            attempts += 1;
            let a = person_sampler.sample(&mut rng) as Value + 1;
            let b = person_sampler.sample(&mut rng) as Value + 1;
            if a == b {
                continue;
            }
            if seen.insert((a, b)) {
                knows.push_unchecked(&[a, b]);
            }
            if seen.insert((b, a)) {
                knows.push_unchecked(&[b, a]);
            }
        }

        let posts = config.posts();
        let mut post_creator = Relation::new("PostCreator", ["post", "person"]);
        for post in 1..=posts as Value {
            let creator = person_sampler.sample(&mut rng) as Value + 1;
            post_creator.push_unchecked(&[post, creator]);
        }

        let post_sampler = ZipfSampler::new(posts, 0.9);
        let mut likes = Relation::new("Likes", ["person", "post"]);
        let mut seen_likes: HashSet<(Value, Value)> = HashSet::new();
        attempts = 0;
        while seen_likes.len() < config.likes_edges() && attempts < config.likes_edges() * 30 {
            attempts += 1;
            let person = person_sampler.sample(&mut rng) as Value + 1;
            let post = post_sampler.sample(&mut rng) as Value + 1;
            if seen_likes.insert((person, post)) {
                likes.push_unchecked(&[person, post]);
            }
        }

        let forums = config.forums();
        let forum_sampler = ZipfSampler::new(forums, 0.7);
        let mut forum_member = Relation::new("ForumMember", ["forum", "person"]);
        let mut seen_members: HashSet<(Value, Value)> = HashSet::new();
        attempts = 0;
        while seen_members.len() < config.member_edges() && attempts < config.member_edges() * 30 {
            attempts += 1;
            let forum = forum_sampler.sample(&mut rng) as Value + 1;
            let person = person_sampler.sample(&mut rng) as Value + 1;
            if seen_members.insert((forum, person)) {
                forum_member.push_unchecked(&[forum, person]);
            }
        }

        let person_weights = random_weights(1..=persons as Value, config.seed ^ 0xBEEF);
        LdbcDataset {
            knows,
            post_creator,
            likes,
            forum_member,
            person_weights,
            config,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &LdbcConfig {
        &self.config
    }

    /// Total number of tuples across all relations.
    pub fn size(&self) -> usize {
        self.knows.len() + self.post_creator.len() + self.likes.len() + self.forum_member.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_scales_with_the_scale_factor() {
        let small = LdbcDataset::generate(LdbcConfig::new(1, 3));
        let large = LdbcDataset::generate(LdbcConfig::new(4, 3));
        assert!(large.size() > 2 * small.size());
    }

    #[test]
    fn knows_graph_is_symmetric() {
        let ds = LdbcDataset::generate(LdbcConfig::new(1, 5));
        let edges: HashSet<(Value, Value)> = ds.knows.iter().map(|t| (t[0], t[1])).collect();
        for &(a, b) in &edges {
            assert!(edges.contains(&(b, a)), "missing reverse edge ({b},{a})");
        }
    }

    #[test]
    fn every_post_has_a_creator() {
        let ds = LdbcDataset::generate(LdbcConfig::new(1, 8));
        assert_eq!(ds.post_creator.len(), ds.config().posts());
    }

    #[test]
    fn deterministic() {
        let a = LdbcDataset::generate(LdbcConfig::new(2, 11));
        let b = LdbcDataset::generate(LdbcConfig::new(2, 11));
        assert_eq!(a.size(), b.size());
        assert_eq!(
            a.knows.iter().collect::<Vec<_>>(),
            b.knows.iter().collect::<Vec<_>>()
        );
    }
}
