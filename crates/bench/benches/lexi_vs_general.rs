//! LexiEnumerator (Algorithm 3) vs. the general acyclic algorithm under
//! the *same* lexicographic ranking, on the DBLP workload.
//!
//! Lemma 4 predicts the specialised backtracking algorithm should beat the
//! priority-queue-based general algorithm on lexicographic orders (it
//! avoids priority queues altogether), and the paper's Figure 6 measures
//! it ~2–3× faster. PR 1 measured the *opposite* on DBLP 2-hop — the
//! general algorithm ~3× faster — so this bench pins the inversion down as
//! a tracked number instead of an anecdote: one id per (query, k, engine),
//! same data, same ranking, same output. When the LexiEnumerator hot path
//! is fixed, this bench is the regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rankedenum_core::{AcyclicEnumerator, LexiEnumerator};
use re_bench::Scale;
use re_storage::Tuple;
use re_workloads::membership::WeightScheme;
use re_workloads::DblpWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let factor = Scale::from_env().factor();
    let dblp = DblpWorkload::generate(5_000 * factor, 42, WeightScheme::Random);

    let mut group = c.benchmark_group("lexi_vs_general");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for spec in [dblp.two_hop(), dblp.three_hop()] {
        let lex = spec.lex_ranking();
        for k in [10usize, 1_000] {
            // Sanity first: both engines must produce identical output
            // (otherwise the timing comparison is meaningless).
            let from_lexi: Vec<Tuple> = LexiEnumerator::new(&spec.query, dblp.db(), &lex)
                .expect("lexi build")
                .take(k)
                .collect();
            let from_general: Vec<Tuple> =
                AcyclicEnumerator::new(&spec.query, dblp.db(), lex.clone())
                    .expect("general build")
                    .take(k)
                    .collect();
            assert_eq!(
                from_lexi, from_general,
                "engines disagree on {} k={k}",
                spec.name
            );

            group.bench_with_input(
                BenchmarkId::new(format!("{}/lexi-alg3", spec.name), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        LexiEnumerator::new(&spec.query, dblp.db(), &lex)
                            .expect("lexi build")
                            .take(k)
                            .collect::<Vec<Tuple>>()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}/general-pq", spec.name), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        AcyclicEnumerator::new(&spec.query, dblp.db(), lex.clone())
                            .expect("general build")
                            .take(k)
                            .collect::<Vec<Tuple>>()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(lexi_vs_general, bench);
criterion_main!(lexi_vs_general);
