//! The ranked-query service end to end: start a TCP server over a shared
//! catalog, then drive the resumable-cursor protocol from several
//! concurrent clients — `OPEN` once, `FETCH` page by page, `CLOSE` — then
//! read the aggregated metrics back from the stats endpoint and scrape
//! the Prometheus exposition (span durations, OPEN/FETCH latency
//! quantiles, time-to-first-answer).
//!
//! Run with: `cargo run --release --example server_quickstart`
//! (`RE_SCALE=0.05` shrinks the dataset for smoke tests.)

use rankedenum::prelude::*;
use rankedenum::scale::scaled;

/// A synthetic co-authorship database (the paper's DBLP 2-hop shape).
fn build_database() -> Result<Database, Box<dyn std::error::Error>> {
    let papers = scaled(300) as u64;
    let mut author_papers = Vec::new();
    for p in 0..papers {
        let pid = 10_000 + p;
        for aid in [1 + p % 83, 100 + p % 57, 200 + p % 31] {
            author_papers.push(vec![aid, pid]);
        }
    }
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples(
        "AuthorPapers",
        attrs(["aid", "pid"]),
        author_papers,
    )?)?;
    Ok(db)
}

const TWO_HOP: &str = "SELECT DISTINCT AP1.aid, AP2.aid \
                       FROM AuthorPapers AS AP1, AuthorPapers AS AP2 \
                       WHERE AP1.pid = AP2.pid ORDER BY AP1.aid + AP2.aid";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A server owning a catalog of named, shared databases.
    let server = RankedQueryServer::new(ServerConfig::default());
    server.catalog().register("dblp", build_database()?);

    // 2. Serve the JSON-lines protocol on a free local port, 4 workers.
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let handle = serve(server.clone(), "127.0.0.1:0", &config)?;
    let addr = handle.addr();
    println!("ranked-query server listening on {addr}");

    // Warm the plan cache so the concurrent opens below all hit it (racing
    // cold opens would each plan the statement independently).
    {
        let mut warmer = TcpClient::connect(addr)?;
        let warm = warmer.open("dblp", TWO_HOP)?;
        warmer.close(warm.session)?;
    }

    // 3. Concurrent TCP clients page through the same ranked query. Each
    //    session pays preprocessing once at OPEN; every FETCH streams the
    //    next rank-ordered page from the live enumerator.
    let mut threads = Vec::new();
    for who in 0..4 {
        threads.push(std::thread::spawn(move || -> Vec<Tuple> {
            let mut client = TcpClient::connect(addr).expect("connect");
            let opened = client.open("dblp", TWO_HOP).expect("open");
            assert_eq!(opened.algorithm, "acyclic");
            let mut rows = Vec::new();
            for _page in 0..3 {
                let page = client.fetch(opened.session, 5).expect("fetch");
                rows.extend(page.rows);
                if page.exhausted {
                    break;
                }
            }
            client.close(opened.session).expect("close");
            println!("client {who}: fetched {} rows in pages of 5", rows.len());
            rows
        }));
    }
    let results: Vec<Vec<Tuple>> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for other in &results[1..] {
        assert_eq!(
            &results[0], other,
            "all sessions see the same rank-ordered answers"
        );
    }

    // 4. The one-shot endpoint: open + drain + close in a single request.
    //    (A different LIMIT is a different statement, so this one plans
    //    fresh and joins the cache for future clients.)
    let mut client = TcpClient::connect(addr)?;
    let top3 = client.query("dblp", &format!("{TWO_HOP} LIMIT 3"))?;
    println!(
        "top-3 co-author pairs (algorithm: {}, plan cached: {}):",
        top3.algorithm, top3.plan_cached
    );
    for row in &top3.rows {
        println!("  {} ⋈ {}", row[0], row[1]);
    }

    // 5. Metrics aggregated across all workers, lock-free.
    let stats = client.stats()?;
    println!(
        "stats: {} sessions opened, {} enumerators built, plan cache {}/{} hits/misses, \
         {} answers emitted, {} PQ operations",
        stats.sessions_opened,
        stats.enumerators_built,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.enumeration.answers,
        stats.enumeration.pq_ops(),
    );
    assert!(stats.sessions_opened >= 4);
    assert!(
        stats.plan_cache_hits >= 4,
        "the warmed plan served every session"
    );

    // 6. The scrapeable surface: the same counters plus every wall-clock
    //    histogram (preprocessing spans, OPEN/FETCH latencies, per-cursor
    //    delay and time-to-first-answer) in Prometheus text format.
    let body = client.metrics()?;
    re_obs::validate_exposition(&body).expect("well-formed Prometheus exposition");
    println!(
        "metrics scrape ({} lines); latency summaries:",
        body.lines().count()
    );
    for line in body.lines().filter(|l| {
        (l.starts_with("re_server_open_seconds") || l.starts_with("re_cursor_ttfa_seconds"))
            && (l.contains("quantile=\"0.5\"")
                || l.contains("quantile=\"0.99\"")
                || l.ends_with("_count")
                || l.contains("_count "))
    }) {
        println!("  {line}");
    }
    assert!(body.contains("re_span_preprocess_reduce_seconds_count"));

    drop(client);
    handle.shutdown();
    println!("server stopped cleanly");
    Ok(())
}
