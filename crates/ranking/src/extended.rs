//! Extended ranking functions beyond the paper's two headline functions.
//!
//! Section 1.1 and Section 2.1 of the paper note that the enumeration
//! machinery works for any *monotone decomposable* ranking function and
//! explicitly mention products and "circuits that use sum and products" as
//! straightforward extensions. This module provides those extensions:
//!
//! * [`ProductRanking`] — the product of the attribute weights,
//! * [`AvgRanking`] — the average attribute weight,
//! * [`WeightedSumRanking`] — `Σ c_A · w(t[A])` with per-attribute
//!   non-negative coefficients,
//! * [`SumProductRanking`] — a two-level sum-of-products circuit
//!   `Σ_g Π_{A ∈ g} w(t[A])` over disjoint attribute groups.
//!
//! All of them require **non-negative weights** to be monotone (replacing a
//! sub-tuple with a higher-keyed one must never lower the combined key);
//! this is asserted in debug builds and documented per type.

use crate::assignment::WeightAssignment;
use crate::rank::Ranking;
use crate::weight::{ExactSum, Weight};
use re_storage::{Attr, Value};

fn debug_assert_non_negative(w: Weight, what: &str) {
    debug_assert!(
        w.value() >= 0.0,
        "{what} requires non-negative weights to stay monotone, got {w}"
    );
}

/// `PRODUCT` ranking: the key of a tuple is the product of its attribute
/// weights.
///
/// Monotone (and therefore usable with every enumerator in
/// `rankedenum-core`) as long as all weights are **non-negative**; this is
/// checked with debug assertions.
#[derive(Clone, Debug)]
pub struct ProductRanking {
    weights: WeightAssignment,
}

impl ProductRanking {
    /// Rank by the product of weights under the given assignment.
    pub fn new(weights: WeightAssignment) -> Self {
        ProductRanking { weights }
    }

    /// Rank by the product of the raw attribute values.
    pub fn value_product() -> Self {
        ProductRanking::new(WeightAssignment::value_as_weight())
    }

    /// The underlying weight assignment.
    pub fn weights(&self) -> &WeightAssignment {
        &self.weights
    }
}

impl Ranking for ProductRanking {
    /// Keys are **exact** products ([`ExactSum`] expansions built with
    /// [`ExactSum::scale`]): like exact sums, exact products are independent
    /// of the factor order, which the enumerators' duplicate elimination and
    /// priority-queue invariants require (per-node attribute orders differ).
    type Key = ExactSum;
    type Plan = Vec<Attr>;

    fn plan(&self, attrs: &[Attr]) -> Self::Plan {
        attrs.to_vec()
    }

    fn key(&self, plan: &Self::Plan, values: &[Value]) -> Self::Key {
        debug_assert_eq!(plan.len(), values.len());
        let mut prod = ExactSum::from(Weight::new(1.0));
        for (a, &v) in plan.iter().zip(values) {
            let w = self.weights.weight_of(a, v);
            debug_assert_non_negative(w, "ProductRanking");
            prod = prod.scale(w.value());
        }
        prod
    }
}

/// `AVG` ranking: the key of a tuple is the arithmetic mean of its attribute
/// weights. Monotone for arbitrary (also negative) weights, because a
/// sub-tuple spans a fixed set of positions: increasing its mean increases
/// its sum and therefore the overall mean.
#[derive(Clone, Debug)]
pub struct AvgRanking {
    weights: WeightAssignment,
}

impl AvgRanking {
    /// Rank by the mean weight under the given assignment.
    pub fn new(weights: WeightAssignment) -> Self {
        AvgRanking { weights }
    }

    /// Rank by the mean of the raw attribute values.
    pub fn value_avg() -> Self {
        AvgRanking::new(WeightAssignment::value_as_weight())
    }
}

impl Ranking for AvgRanking {
    /// Keys are the exact weight sum scaled exactly by `1/n` (see
    /// [`ExactSum`] for why exactness matters to the enumerators).
    type Key = ExactSum;
    type Plan = Vec<Attr>;

    fn plan(&self, attrs: &[Attr]) -> Self::Plan {
        attrs.to_vec()
    }

    fn key(&self, plan: &Self::Plan, values: &[Value]) -> Self::Key {
        debug_assert_eq!(plan.len(), values.len());
        if plan.is_empty() {
            return ExactSum::zero();
        }
        // Sum the raw weights exactly, then scale exactly by 1/n: a single
        // exact scaling per key preserves the raw-sum order at every tree
        // level (dividing each term separately would round with a different
        // divisor per node and lose cross-level consistency).
        let sum = ExactSum::of(
            plan.iter()
                .zip(values)
                .map(|(a, &v)| self.weights.weight_of(a, v)),
        );
        sum.scale(1.0 / plan.len() as f64)
    }
}

/// Weighted-sum ranking: `Σ_A c_A · w(t[A])` with per-attribute
/// coefficients. Attributes without an explicit coefficient use
/// [`WeightedSumRanking::default_coefficient`]. Monotone as long as all
/// coefficients are **non-negative** (checked at construction).
#[derive(Clone, Debug)]
pub struct WeightedSumRanking {
    coefficients: Vec<(Attr, f64)>,
    default_coefficient: f64,
    weights: WeightAssignment,
}

impl WeightedSumRanking {
    /// Build from `(attribute, coefficient)` pairs; unlisted attributes get
    /// coefficient `default_coefficient`.
    ///
    /// # Panics
    /// Panics if any coefficient (including the default) is negative, since
    /// the ranking would no longer be monotone.
    pub fn new(
        coefficients: impl IntoIterator<Item = (impl Into<Attr>, f64)>,
        default_coefficient: f64,
        weights: WeightAssignment,
    ) -> Self {
        let coefficients: Vec<(Attr, f64)> = coefficients
            .into_iter()
            .map(|(a, c)| (a.into(), c))
            .collect();
        assert!(
            default_coefficient >= 0.0 && coefficients.iter().all(|(_, c)| *c >= 0.0),
            "WeightedSumRanking coefficients must be non-negative"
        );
        WeightedSumRanking {
            coefficients,
            default_coefficient,
            weights,
        }
    }

    /// Sum of the listed attributes only (coefficient 1), ignoring all other
    /// attributes (coefficient 0). This is the ranking a SQL
    /// `ORDER BY a1 + a2` induces when the projection also contains other
    /// attributes.
    pub fn over_attrs(
        attrs: impl IntoIterator<Item = impl Into<Attr>>,
        weights: WeightAssignment,
    ) -> Self {
        WeightedSumRanking::new(attrs.into_iter().map(|a| (a, 1.0)), 0.0, weights)
    }

    /// Default coefficient applied to unlisted attributes.
    pub fn default_coefficient(&self) -> f64 {
        self.default_coefficient
    }

    fn coefficient(&self, attr: &Attr) -> f64 {
        self.coefficients
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, c)| *c)
            .unwrap_or(self.default_coefficient)
    }
}

/// Key plan for [`WeightedSumRanking`]: the coefficient of each position.
#[derive(Clone, Debug)]
pub struct WeightedSumPlan {
    slots: Vec<(Attr, f64)>,
}

impl Ranking for WeightedSumRanking {
    /// Keys are exact sums of the per-attribute terms `c_A · w` (see
    /// [`ExactSum`] for why exactness matters to the enumerators).
    type Key = ExactSum;
    type Plan = WeightedSumPlan;

    fn plan(&self, attrs: &[Attr]) -> Self::Plan {
        WeightedSumPlan {
            slots: attrs
                .iter()
                .map(|a| (a.clone(), self.coefficient(a)))
                .collect(),
        }
    }

    fn key(&self, plan: &Self::Plan, values: &[Value]) -> Self::Key {
        debug_assert_eq!(plan.slots.len(), values.len());
        ExactSum::of(
            plan.slots
                .iter()
                .zip(values)
                .map(|((a, c), &v)| Weight::new(c * self.weights.weight_of(a, v).value())),
        )
    }
}

/// A two-level sum-of-products circuit:
/// `rank(t) = Σ_g Π_{A ∈ g} w(t[A])`, where the groups `g` are disjoint
/// attribute sets. Attributes not covered by any group contribute an
/// additive `w(t[A])` term of their own (i.e. behave like singleton groups),
/// so the key of a partial tuple is always defined.
///
/// Monotone for **non-negative** weights (debug-asserted). With singleton
/// groups this degenerates to `SUM`; with a single group covering all
/// attributes it degenerates to `PRODUCT`.
#[derive(Clone, Debug)]
pub struct SumProductRanking {
    groups: Vec<Vec<Attr>>,
    weights: WeightAssignment,
}

impl SumProductRanking {
    /// Build from disjoint attribute groups.
    ///
    /// # Panics
    /// Panics if the groups are not disjoint.
    pub fn new(
        groups: impl IntoIterator<Item = impl IntoIterator<Item = impl Into<Attr>>>,
        weights: WeightAssignment,
    ) -> Self {
        let groups: Vec<Vec<Attr>> = groups
            .into_iter()
            .map(|g| g.into_iter().map(Into::into).collect())
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for g in &groups {
            for a in g {
                assert!(
                    seen.insert(a.clone()),
                    "SumProductRanking groups must be disjoint; {a:?} repeated"
                );
            }
        }
        SumProductRanking { groups, weights }
    }

    /// Group index of an attribute, if covered.
    fn group_of(&self, attr: &Attr) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(attr))
    }
}

/// Key plan for [`SumProductRanking`]: for each position, the group index
/// (`usize::MAX` = uncovered singleton).
#[derive(Clone, Debug)]
pub struct SumProductPlan {
    slots: Vec<(Attr, usize)>,
    group_count: usize,
}

impl Ranking for SumProductRanking {
    /// Keys are exact sums of exact group products (see [`ExactSum`] for
    /// why exactness matters to the enumerators).
    type Key = ExactSum;
    type Plan = SumProductPlan;

    fn plan(&self, attrs: &[Attr]) -> Self::Plan {
        SumProductPlan {
            slots: attrs
                .iter()
                .map(|a| (a.clone(), self.group_of(a).unwrap_or(usize::MAX)))
                .collect(),
            group_count: self.groups.len(),
        }
    }

    fn key(&self, plan: &Self::Plan, values: &[Value]) -> Self::Key {
        debug_assert_eq!(plan.slots.len(), values.len());
        // Products are accumulated only over the group members that are
        // present in this attribute list (partial tuples of a join-tree
        // subtree may contain a strict subset of a group); absent members
        // contribute a neutral factor of 1, which keeps the key monotone.
        let mut products: Vec<Option<ExactSum>> = vec![None; plan.group_count];
        let mut total = ExactSum::zero();
        for ((a, g), &v) in plan.slots.iter().zip(values) {
            let w = self.weights.weight_of(a, v);
            debug_assert_non_negative(w, "SumProductRanking");
            if *g == usize::MAX {
                total.add_weight(w);
            } else {
                let slot = &mut products[*g];
                *slot = Some(match slot.take() {
                    None => ExactSum::from(w),
                    Some(p) => p.scale(w.value()),
                });
            }
        }
        for p in products.into_iter().flatten() {
            total.add_sum(&p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::SumRanking;
    use re_storage::attr::attrs;

    #[test]
    fn product_ranking_multiplies_weights() {
        let r = ProductRanking::value_product();
        assert_eq!(r.key_of(&attrs(["a", "b"]), &[3, 4]), Weight::new(12.0));
        assert_eq!(r.key_of(&attrs(["a"]), &[5]), Weight::new(5.0));
        assert_eq!(r.key_of(&attrs(["a", "b"]), &[0, 9]), Weight::ZERO);
    }

    #[test]
    fn product_ranking_orders_pairs() {
        let r = ProductRanking::value_product();
        let a = attrs(["a", "b"]);
        assert!(r.key_of(&a, &[1, 6]) < r.key_of(&a, &[2, 4]));
        assert_eq!(r.key_of(&a, &[2, 6]), r.key_of(&a, &[3, 4]));
    }

    #[test]
    fn product_monotone_under_subtuple_bump() {
        let r = ProductRanking::value_product();
        let a = attrs(["a", "b", "c"]);
        let base = r.key_of(&a, &[2, 3, 4]);
        let bumped = r.key_of(&a, &[2, 5, 4]);
        assert!(bumped >= base);
    }

    #[test]
    fn avg_ranking_is_mean_of_weights() {
        let r = AvgRanking::value_avg();
        assert_eq!(r.key_of(&attrs(["a", "b"]), &[3, 5]), Weight::new(4.0));
        assert_eq!(r.key_of(&attrs(["a"]), &[7]), Weight::new(7.0));
        assert_eq!(r.key_of(&[], &[]), Weight::ZERO);
    }

    #[test]
    fn avg_and_sum_induce_the_same_order_on_equal_arity() {
        let sum = SumRanking::value_sum();
        let avg = AvgRanking::value_avg();
        let a = attrs(["x", "y", "z"]);
        let tuples = [[1u64, 2, 3], [9, 0, 0], [3, 3, 3], [0, 0, 1]];
        for t1 in &tuples {
            for t2 in &tuples {
                let s = sum.key_of(&a, t1).cmp(&sum.key_of(&a, t2));
                let m = avg.key_of(&a, t1).cmp(&avg.key_of(&a, t2));
                assert_eq!(s, m, "sum and avg must agree on fixed arity");
            }
        }
    }

    #[test]
    fn weighted_sum_applies_coefficients_and_default() {
        let r = WeightedSumRanking::new(
            [("a", 2.0), ("b", 0.5)],
            0.0,
            WeightAssignment::value_as_weight(),
        );
        // 2*10 + 0.5*4 + 0*100
        assert_eq!(
            r.key_of(&attrs(["a", "b", "c"]), &[10, 4, 100]),
            Weight::new(22.0)
        );
        assert_eq!(r.default_coefficient(), 0.0);
    }

    #[test]
    fn weighted_sum_over_attrs_ignores_others() {
        let r = WeightedSumRanking::over_attrs(["a", "b"], WeightAssignment::value_as_weight());
        let key = r.key_of(&attrs(["a", "b", "noise"]), &[1, 2, 1000]);
        assert_eq!(key, Weight::new(3.0));
    }

    #[test]
    fn weighted_sum_with_unit_coefficients_matches_sum() {
        let ws = WeightedSumRanking::new(
            Vec::<(&str, f64)>::new(),
            1.0,
            WeightAssignment::value_as_weight(),
        );
        let sum = SumRanking::value_sum();
        let a = attrs(["x", "y"]);
        for t in [[0u64, 0], [5, 7], [100, 1]] {
            assert_eq!(ws.key_of(&a, &t), sum.key_of(&a, &t));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn weighted_sum_rejects_negative_coefficients() {
        let _ = WeightedSumRanking::new([("a", -1.0)], 0.0, WeightAssignment::value_as_weight());
    }

    #[test]
    fn sum_product_circuit_combines_groups_and_singletons() {
        // rank = w(a)·w(b) + w(c)
        let r = SumProductRanking::new([["a", "b"]], WeightAssignment::value_as_weight());
        assert_eq!(
            r.key_of(&attrs(["a", "b", "c"]), &[3, 4, 5]),
            Weight::new(17.0)
        );
    }

    #[test]
    fn sum_product_with_singleton_groups_matches_sum() {
        let r = SumProductRanking::new([["a"], ["b"]], WeightAssignment::value_as_weight());
        let sum = SumRanking::value_sum();
        let a = attrs(["a", "b"]);
        for t in [[1u64, 2], [9, 9], [0, 4]] {
            assert_eq!(r.key_of(&a, &t), sum.key_of(&a, &t));
        }
    }

    #[test]
    fn sum_product_with_one_full_group_matches_product() {
        let r = SumProductRanking::new([["a", "b", "c"]], WeightAssignment::value_as_weight());
        let prod = ProductRanking::value_product();
        let a = attrs(["a", "b", "c"]);
        for t in [[1u64, 2, 3], [4, 5, 6], [0, 7, 9]] {
            assert_eq!(r.key_of(&a, &t), prod.key_of(&a, &t));
        }
    }

    #[test]
    fn sum_product_partial_tuple_key_is_defined() {
        // Only one member of the (a, b) group is present — the key must
        // still be computable (partial tuples of subtrees do this).
        let r = SumProductRanking::new([["a", "b"]], WeightAssignment::value_as_weight());
        assert_eq!(r.key_of(&attrs(["a", "c"]), &[3, 5]), Weight::new(8.0));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn sum_product_rejects_overlapping_groups() {
        let _ = SumProductRanking::new(
            [["a", "b"], ["b", "c"]],
            WeightAssignment::value_as_weight(),
        );
    }
}
