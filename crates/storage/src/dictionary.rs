//! A string dictionary (interner) for loading textual datasets.
//!
//! Real datasets (DBLP author names, IMDB titles, ...) carry string keys; the
//! algorithms only ever compare and hash values, so strings are
//! dictionary-encoded into dense [`Value`] ids on load and decoded only when
//! results are displayed.

use crate::value::Value;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// A bidirectional string ↔ [`Value`] dictionary.
///
/// Both directions share one `Arc<str>` allocation per distinct string:
/// the map key and the vector entry are reference-counted views of the
/// same buffer, so interning a fresh string costs exactly one string
/// allocation (and cloning a dictionary copies no string data at all).
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    to_id: HashMap<Arc<str>, Value>,
    to_str: Vec<Arc<str>>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern a string, returning its (stable) id.
    ///
    /// The hit path is one borrowed lookup with no allocation. The miss
    /// path allocates the string **once** as an `Arc<str>` shared by both
    /// directions and inserts through the entry API (the old
    /// implementation re-hashed with `insert` and allocated the string
    /// twice — once for the map key, once for the vector).
    pub fn intern(&mut self, s: &str) -> Value {
        if let Some(&id) = self.to_id.get(s) {
            return id;
        }
        let shared: Arc<str> = Arc::from(s);
        match self.to_id.entry(shared) {
            // Unreachable after the miss above, but harmless: the probe
            // `Arc` is simply dropped.
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(v) => {
                let id = self.to_str.len() as Value;
                self.to_str.push(Arc::clone(v.key()));
                v.insert(id);
                id
            }
        }
    }

    /// Look up the id of a previously interned string.
    pub fn id_of(&self, s: &str) -> Option<Value> {
        self.to_id.get(s).copied()
    }

    /// Resolve an id back to its string.
    pub fn resolve(&self, id: Value) -> Option<&str> {
        self.to_str.get(id as usize).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.to_str.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.to_str.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("alice");
        let b = d.intern("bob");
        let a2 = d.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let a = d.intern("alice");
        assert_eq!(d.resolve(a), Some("alice"));
        assert_eq!(d.id_of("alice"), Some(a));
        assert_eq!(d.id_of("carol"), None);
        assert_eq!(d.resolve(99), None);
    }

    #[test]
    fn both_directions_share_one_allocation() {
        let mut d = Dictionary::new();
        let a = d.intern("alice");
        let key = d.to_id.keys().next().unwrap();
        assert!(
            Arc::ptr_eq(key, &d.to_str[a as usize]),
            "map key and vector entry must share the same buffer"
        );
        // Clones bump refcounts instead of copying strings.
        let d2 = d.clone();
        assert!(Arc::ptr_eq(&d.to_str[a as usize], &d2.to_str[a as usize]));
        assert_eq!(d2.resolve(a), Some("alice"));
    }
}
