#!/usr/bin/env bash
# CI gate for the rankedenum workspace. Run from the repo root.
#
# Mirrors the tier-1 verification (`cargo build --release && cargo test -q`)
# and adds formatting, lints and bench compilation so regressions in any of
# them fail fast.

set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --workspace --release
run cargo test -q --workspace
# The server integration suite (sessions, plan cache, TCP worker pool) is
# part of the workspace tests, but run it explicitly so a hang or flake is
# attributed to the right target.
run cargo test -q -p re_server --test server_integration
# Drive the server end to end over real sockets at smoke scale.
run env RE_SCALE=0.05 cargo run -q --release --example server_quickstart
run cargo bench --workspace --no-run

echo
echo "ci.sh: all checks passed"
