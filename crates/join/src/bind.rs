//! Binding query atoms to stored relations.

use crate::error::JoinError;
use re_query::{JoinProjectQuery, QueryError};
use re_storage::{Database, Relation};

/// Materialise each atom of `query` as a relation whose attributes are the
/// atom's query variables. Column `i` of the stored relation becomes
/// variable `vars[i]` of the atom.
///
/// Self-joins are handled naturally: each atom gets its own (cheap, data is
/// copied once per atom) relation with its own variable names, so the rest
/// of the pipeline never needs to know two atoms scan the same base table.
pub fn bind_atoms(query: &JoinProjectQuery, db: &Database) -> Result<Vec<Relation>, JoinError> {
    (0..query.atoms().len())
        .map(|i| bind_atom(query, db, i))
        .collect()
}

/// Bind a single atom (by index) of `query` — the per-atom unit of
/// [`bind_atoms`]. Operators that only touch a subset of the atoms (GHD bag
/// materialisation binds just `bag.atoms`) use this to avoid cloning the
/// relations of every other atom in the query.
pub fn bind_atom(
    query: &JoinProjectQuery,
    db: &Database,
    atom_index: usize,
) -> Result<Relation, JoinError> {
    let atom = &query.atoms()[atom_index];
    let base = db.relation(&atom.relation)?;
    if base.arity() != atom.vars.len() {
        return Err(JoinError::Query(QueryError::AtomArityMismatch {
            atom: atom.name.clone(),
            relation_arity: base.arity(),
            atom_arity: atom.vars.len(),
        }));
    }
    let mut bound = base.clone();
    bound.set_name(atom.name.clone());
    bound.set_attrs(atom.vars.clone());
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;
    use re_storage::attr::attrs;
    use re_storage::Attr;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("AP", attrs(["aid", "pid"]), vec![vec![1, 10], vec![2, 10]])
                .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn self_join_gets_two_independently_named_copies() {
        let q = QueryBuilder::new()
            .atom("AP1", "AP", ["a1", "p"])
            .atom("AP2", "AP", ["a2", "p"])
            .project(["a1", "a2"])
            .build()
            .unwrap();
        let bound = bind_atoms(&q, &db()).unwrap();
        assert_eq!(bound.len(), 2);
        assert_eq!(bound[0].name(), "AP1");
        assert_eq!(bound[0].attrs(), &[Attr::new("a1"), Attr::new("p")]);
        assert_eq!(bound[1].attrs(), &[Attr::new("a2"), Attr::new("p")]);
        assert_eq!(bound[0].len(), 2);
    }

    #[test]
    fn arity_mismatch_detected() {
        let q = QueryBuilder::new()
            .atom("AP1", "AP", ["a1", "p", "extra"])
            .project(["a1"])
            .build()
            .unwrap();
        assert!(bind_atoms(&q, &db()).is_err());
    }

    #[test]
    fn missing_relation_detected() {
        let q = QueryBuilder::new()
            .atom("X", "DoesNotExist", ["a", "b"])
            .project(["a"])
            .build()
            .unwrap();
        assert!(bind_atoms(&q, &db()).is_err());
    }
}
