//! Query specifications: a query together with the weight assignment that
//! defines its ranking, packaged so every consumer (examples, tests,
//! benchmarks) ranks the same way.

use re_query::{JoinProjectQuery, UnionQuery};
use re_ranking::{LexRanking, SumRanking, WeightAssignment};

/// A named join-project query plus the weight assignment used to rank it.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Workload name (e.g. `"DBLP2hop"`).
    pub name: String,
    /// The query.
    pub query: JoinProjectQuery,
    /// The weight assignment over the projected variables.
    pub weights: WeightAssignment,
}

impl QuerySpec {
    /// Create a specification.
    pub fn new(
        name: impl Into<String>,
        query: JoinProjectQuery,
        weights: WeightAssignment,
    ) -> Self {
        QuerySpec {
            name: name.into(),
            query,
            weights,
        }
    }

    /// The `SUM` ranking of the paper (`ORDER BY w(A_1) + ... + w(A_m)`).
    pub fn sum_ranking(&self) -> SumRanking {
        SumRanking::new(self.weights.clone())
    }

    /// The `LEXICOGRAPHIC` ranking of the paper
    /// (`ORDER BY w(A_1), w(A_2), ...` over the projection order).
    pub fn lex_ranking(&self) -> LexRanking {
        LexRanking::new(self.query.projection().to_vec(), self.weights.clone())
    }
}

/// A named union query plus its weight assignment.
#[derive(Clone, Debug)]
pub struct UnionSpec {
    /// Workload name (e.g. `"LDBC-Q3"`).
    pub name: String,
    /// The union query.
    pub query: UnionQuery,
    /// The weight assignment over the projected variables.
    pub weights: WeightAssignment,
}

impl UnionSpec {
    /// Create a specification.
    pub fn new(name: impl Into<String>, query: UnionQuery, weights: WeightAssignment) -> Self {
        UnionSpec {
            name: name.into(),
            query,
            weights,
        }
    }

    /// The `SUM` ranking.
    pub fn sum_ranking(&self) -> SumRanking {
        SumRanking::new(self.weights.clone())
    }

    /// The `LEXICOGRAPHIC` ranking over the shared projection order.
    pub fn lex_ranking(&self) -> LexRanking {
        LexRanking::new(self.query.projection().to_vec(), self.weights.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_query::QueryBuilder;

    #[test]
    fn spec_builds_both_rankings() {
        let q = QueryBuilder::new()
            .atom("R", "R", ["a", "b"])
            .project(["a"])
            .build()
            .unwrap();
        let spec = QuerySpec::new("t", q, WeightAssignment::value_as_weight());
        let _ = spec.sum_ranking();
        let lex = spec.lex_ranking();
        assert_eq!(lex.order().len(), 1);
    }
}
