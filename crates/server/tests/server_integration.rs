//! Integration tests for the ranked-query service — including the
//! acceptance criteria of the session-server design:
//!
//! * `OPEN` + two successive `FETCH k` calls concatenate to exactly the
//!   single-shot `LIMIT 2k` result, with preprocessing having run once
//!   (asserted through the `enumerators_built` / `cells_created` metrics
//!   and the plan-cache hit counters);
//! * at least four concurrent sessions over one shared catalog produce
//!   correct, duplicate-free, rank-ordered answers;
//! * the TCP front-end serves the same protocol through its worker pool.

use re_server::{serve, LocalClient, RankedQueryServer, ServerConfig, TcpClient, Transport};
use re_storage::{attr::attrs, Database, Relation};
use std::sync::Arc;
use std::time::Duration;

/// Co-authorship database: enough rows for multi-page enumerations.
fn coauthor_db() -> Database {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for paper in 0..12u64 {
        for slot in 0..4u64 {
            // author ids overlap across papers → shared co-authors
            rows.push(vec![(paper * 3 + slot * 7) % 40, 1000 + paper]);
        }
    }
    db.add_relation(Relation::with_tuples("AP", attrs(["aid", "pid"]), rows).unwrap())
        .unwrap();
    db
}

const TWO_HOP: &str = "SELECT DISTINCT AP1.aid, AP2.aid FROM AP AS AP1, AP AS AP2 \
                       WHERE AP1.pid = AP2.pid ORDER BY AP1.aid + AP2.aid";

fn server_with_db(ttl: Duration) -> Arc<RankedQueryServer> {
    let server = RankedQueryServer::new(ServerConfig {
        session_ttl: ttl,
        ..ServerConfig::default()
    });
    server.catalog().register("dblp", coauthor_db());
    server
}

#[test]
fn paged_fetches_equal_single_shot_with_one_preprocessing_pass() {
    let server = server_with_db(Duration::from_secs(60));
    let mut client = LocalClient::new(Arc::clone(&server));
    let k = 10;
    // The session and the one-shot run the *same* statement (LIMIT 3k), so
    // the one-shot is a plan-cache hit; the 2k comparison uses its prefix.
    let statement = format!("{TWO_HOP} LIMIT {}", 3 * k);

    let opened = client.open("dblp", &statement).unwrap();
    assert_eq!(opened.algorithm, "acyclic");
    assert!(!opened.plan_cached, "first open plans from scratch");
    assert_eq!(opened.columns, vec!["AP1.aid", "AP2.aid"]);

    let after_open = client.stats().unwrap();
    assert_eq!(after_open.enumerators_built, 1);
    let preprocessing_cells = after_open.enumeration.cells_created;
    assert!(preprocessing_cells > 0, "preprocessing ran at OPEN");

    let p1 = client.fetch(opened.session, k).unwrap();
    let p2 = client.fetch(opened.session, k).unwrap();
    assert_eq!(p1.rows.len() as u64, k);
    assert_eq!(p2.rows.len() as u64, k);

    let single = client.query("dblp", &statement).unwrap();
    assert!(
        single.plan_cached,
        "same normalised statement hits the cache"
    );
    let mut combined = p1.rows.clone();
    combined.extend(p2.rows.clone());
    assert_eq!(combined, single.rows[..2 * k as usize]);

    // Preprocessing ran once per enumerator: the session's two fetches
    // added successor cells but no second preprocessing pass (the one-shot
    // query built the second enumerator).
    let final_stats = client.stats().unwrap();
    assert_eq!(final_stats.enumerators_built, 2);
    assert_eq!(final_stats.plan_cache_hits, 1);
    assert_eq!(final_stats.plan_cache_misses, 1);
    assert!(
        final_stats.enumeration.cells_created < 3 * preprocessing_cells,
        "fetches must extend the existing cells, not rebuild them"
    );

    assert!(client.close(opened.session).unwrap());
    assert!(
        !client.close(opened.session).unwrap(),
        "double close is clean"
    );

    // The acceptance shape verbatim: OPEN (no LIMIT) + two FETCH k == the
    // single-shot `LIMIT 2k` result of the same query.
    let unlimited = client.open("dblp", TWO_HOP).unwrap();
    let q1 = client.fetch(unlimited.session, k).unwrap();
    let q2 = client.fetch(unlimited.session, k).unwrap();
    let limit_2k = client
        .query("dblp", &format!("{TWO_HOP} LIMIT {}", 2 * k))
        .unwrap();
    let mut paged = q1.rows;
    paged.extend(q2.rows);
    assert_eq!(paged, limit_2k.rows);
    client.close(unlimited.session).unwrap();
}

#[test]
fn concurrent_sessions_share_one_catalog_and_stay_correct() {
    let server = server_with_db(Duration::from_secs(60));

    // Reference: the full answer sequence, single-threaded.
    let mut reference_client = LocalClient::new(Arc::clone(&server));
    let reference = reference_client.query("dblp", TWO_HOP).unwrap().rows;
    assert!(
        reference.len() > 20,
        "workload is big enough to be interesting"
    );

    let threads = 6;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let server = Arc::clone(&server);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = LocalClient::new(server);
                let opened = client.open("dblp", TWO_HOP).unwrap();
                // Page with a small k to maximise interleaving.
                let mut collected = Vec::new();
                loop {
                    let page = client.fetch(opened.session, 7).unwrap();
                    collected.extend(page.rows);
                    if page.exhausted {
                        break;
                    }
                }
                assert_eq!(collected, reference, "session diverged from reference");
                // Exhausted sessions are reaped server-side.
                assert!(!client.close(opened.session).unwrap());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut client = LocalClient::new(Arc::clone(&server));
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions_opened, threads as u64);
    assert_eq!(
        stats.sessions_open, 0,
        "all sessions were reaped on exhaustion"
    );
    assert_eq!(stats.plan_cache_misses, 1, "one plan served every session");
    assert_eq!(stats.plan_cache_hits, threads as u64);
    // Duplicate-free and rank-ordered (the reference is checked once here).
    let mut seen = std::collections::HashSet::new();
    let mut last_sum = 0u64;
    for row in &reference {
        assert!(seen.insert(row.clone()), "duplicate answer {row:?}");
        let sum = row[0] + row[1];
        assert!(sum >= last_sum, "answers out of rank order");
        last_sum = sum;
    }
}

#[test]
fn tcp_front_end_serves_the_protocol_through_the_worker_pool() {
    let server = server_with_db(Duration::from_secs(60));
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", &config).unwrap();
    let addr = handle.addr();

    // Reference result computed in-process.
    let reference = LocalClient::new(Arc::clone(&server))
        .query("dblp", &format!("{TWO_HOP} LIMIT 12"))
        .unwrap()
        .rows;

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                client.ping().unwrap();
                assert_eq!(client.catalog().unwrap(), vec!["dblp".to_string()]);
                let opened = client.open("dblp", TWO_HOP).unwrap();
                let p1 = client.fetch(opened.session, 5).unwrap();
                let p2 = client.fetch(opened.session, 7).unwrap();
                let mut combined = p1.rows;
                combined.extend(p2.rows);
                assert_eq!(combined, reference);
                client.close(opened.session).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Server-side errors arrive as typed error responses, not hangups.
    let mut client = TcpClient::connect(addr).unwrap();
    let err = client.open("nope", TWO_HOP).unwrap_err();
    assert!(err.to_string().contains("unknown database"));
    let err = client.fetch(999_999, 5).unwrap_err();
    assert!(err.to_string().contains("session"));
    let err = client.open("dblp", "SELECT broken FROM").unwrap_err();
    assert!(matches!(err, re_server::ClientError::Server { .. }));

    handle.shutdown();
}

#[test]
fn idle_sessions_are_evicted_and_reported() {
    let server = server_with_db(Duration::from_millis(30));
    let mut client = LocalClient::new(Arc::clone(&server));
    let opened = client.open("dblp", TWO_HOP).unwrap();
    assert_eq!(client.fetch(opened.session, 3).unwrap().rows.len(), 3);
    std::thread::sleep(Duration::from_millis(90));
    let err = client.fetch(opened.session, 3).unwrap_err();
    assert!(
        err.to_string().contains("session"),
        "evicted session is gone"
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(
        stats.sessions_evicted_idle, 1,
        "TTL reaping must be attributed to the idle counter"
    );
    assert_eq!(stats.sessions_evicted_budget, 0);
    assert_eq!(stats.sessions_open, 0);
}

#[test]
fn memory_budget_evicts_the_heaviest_idle_session_first() {
    let tiny_db = || {
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("T", attrs(["a"]), vec![vec![1], vec![2], vec![3]]).unwrap(),
        )
        .unwrap();
        db
    };
    const TINY: &str = "SELECT DISTINCT T.a FROM T ORDER BY T.a";

    // Probe pass: measure the deterministic parked footprint of the heavy
    // (2-hop) and tiny cursors on an unlimited server.
    let probe = server_with_db(Duration::from_secs(60));
    probe.catalog().register("tiny", tiny_db());
    let mut client = LocalClient::new(Arc::clone(&probe));
    let heavy = client.open("dblp", TWO_HOP).unwrap();
    let heavy_bytes = client.stats().unwrap().session_bytes_parked;
    client.close(heavy.session).unwrap();
    let small = client.open("tiny", TINY).unwrap();
    let small_bytes = client.stats().unwrap().session_bytes_parked;
    client.close(small.session).unwrap();
    assert!(heavy_bytes > small_bytes, "2-hop frontier outweighs 3 rows");
    assert!(small_bytes > 1);

    // Real pass: the budget admits the heavy session plus one tiny one.
    // Parking a second tiny session pushes the table over, and the policy
    // must evict the *heaviest* idle cursor — not the oldest, not the
    // newest.
    let server = RankedQueryServer::new(ServerConfig {
        session_budget_bytes: heavy_bytes + small_bytes + 1,
        ..ServerConfig::default()
    });
    server.catalog().register("dblp", coauthor_db());
    server.catalog().register("tiny", tiny_db());
    let mut client = LocalClient::new(Arc::clone(&server));
    let heavy = client.open("dblp", TWO_HOP).unwrap();
    let small_a = client.open("tiny", TINY).unwrap();
    let small_b = client.open("tiny", TINY).unwrap();

    // The heavy cursor is gone, with the documented error on FETCH.
    let err = client.fetch(heavy.session, 3).unwrap_err();
    assert!(
        err.to_string()
            .contains("evicted to enforce the session memory budget"),
        "budget eviction must be attributed: {err}"
    );
    // Both tiny sessions still stream.
    assert_eq!(
        client.fetch(small_a.session, 1).unwrap().rows,
        vec![vec![1]]
    );
    assert_eq!(
        client.fetch(small_b.session, 1).unwrap().rows,
        vec![vec![1]]
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions_evicted_budget, 1);
    assert_eq!(
        stats.sessions_evicted_idle, 0,
        "a budget eviction must not leak into the idle counter"
    );
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(stats.session_budget_bytes, heavy_bytes + small_bytes + 1);
    assert_eq!(stats.sessions_open, 2);
    assert!(stats.session_bytes_parked <= stats.session_budget_bytes);
    assert!(stats.enumeration.frontier_bytes > 0);
    assert!(stats.enumeration.frontier_peak_bytes > 0);
    assert_eq!(
        stats.enumeration.tuple_allocs, 0,
        "arena engines allocate no hot-path tuples server-wide"
    );
}

#[test]
fn union_and_cyclic_statements_report_their_algorithm() {
    let server = RankedQueryServer::new(ServerConfig::default());
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples(
            "E",
            attrs(["s", "t"]),
            vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 4], vec![4, 1]],
        )
        .unwrap(),
    )
    .unwrap();
    server.catalog().register("graph", db);
    let mut client = LocalClient::new(server);

    let triangle = client
        .open(
            "graph",
            "SELECT DISTINCT E1.s, E2.s FROM E AS E1, E AS E2, E AS E3 \
             WHERE E1.t = E2.s AND E2.t = E3.s AND E3.t = E1.s",
        )
        .unwrap();
    assert_eq!(triangle.algorithm, "cyclic-ghd");
    let page = client.fetch(triangle.session, 100).unwrap();
    assert!(!page.rows.is_empty(), "the graph contains triangles");

    // The stats endpoint surfaces the chosen GHD plan: its shape string,
    // bag count and cost estimate, and that no fallback was needed.
    let stats = client.stats().unwrap();
    assert!(
        stats.ghd_last_plan.starts_with("cycle-"),
        "expected a cycle-shaped plan, got `{}`",
        stats.ghd_last_plan
    );
    assert!(stats.enumeration.ghd_bags >= 1);
    assert!(stats.enumeration.ghd_estimated_rows > 0);
    assert_eq!(stats.enumeration.ghd_fallbacks, 0);

    let union = client
        .query(
            "graph",
            "SELECT DISTINCT E1.s FROM E AS E1 UNION SELECT DISTINCT E2.t FROM E AS E2",
        )
        .unwrap();
    assert_eq!(union.algorithm, "union-merge");
    assert!(!union.rows.is_empty());
}

#[test]
fn lexicographic_order_routes_to_the_lexi_engine() {
    // An acyclic statement under a lexicographic ORDER BY is served by the
    // index-backed Algorithm 3; its answers equal the general algorithm's
    // SUM-free sequence and the memoized-cell counters reach the stats
    // endpoint.
    let server = server_with_db(Duration::from_secs(60));
    let mut client = LocalClient::new(Arc::clone(&server));
    let lex_statement = "SELECT DISTINCT AP1.aid, AP2.aid FROM AP AS AP1, AP AS AP2 \
                         WHERE AP1.pid = AP2.pid ORDER BY AP1.aid, AP2.aid";

    let opened = client.open("dblp", lex_statement).unwrap();
    assert_eq!(opened.algorithm, "lexi");
    let mut rows = Vec::new();
    loop {
        let page = client.fetch(opened.session, 7).unwrap();
        rows.extend(page.rows);
        if page.exhausted {
            break;
        }
    }
    // Rank order under the default value-as-weight lexicographic ranking
    // is plain (aid1, aid2) dictionary order; distinct by construction.
    assert!(rows.windows(2).all(|w| w[0] < w[1]));
    let single_shot = client.query("dblp", lex_statement).unwrap();
    assert_eq!(single_shot.algorithm, "lexi");
    assert!(single_shot.plan_cached, "same normalised statement");
    assert_eq!(rows, single_shot.rows);

    // The 2-hop a2-level depends on the whole (a1) prefix, so reuse comes
    // from its single-shot rerun sharing nothing — but the counter must at
    // least surface through the protocol without erroring.
    let stats = client.stats().unwrap();
    assert!(stats.enumeration.cells_created > 0);
    assert!(stats.enumeration.answers >= 2 * rows.len() as u64);
}

#[test]
fn opens_route_preprocessing_through_the_shared_pool() {
    // A cyclic OPEN materialises its GHD bags as tasks on the server's
    // shared pool; the `stats` endpoint must therefore show pool work
    // after the open, and the answers must match a serial server's.
    let make_db = || {
        let mut db = Database::new();
        let mut rows = Vec::new();
        for i in 0..60u64 {
            rows.push(vec![i % 12, 100 + i % 9]);
            rows.push(vec![(i * 5 + 3) % 12, 100 + i % 9]);
        }
        let mut rel = Relation::with_tuples("M", attrs(["e", "c"]), rows).unwrap();
        rel.dedup_tuples();
        db.add_relation(rel).unwrap();
        db
    };
    // 4-cycle over the membership relation: a1–p1–a2–p2–a1.
    let four_cycle = "SELECT DISTINCT M1.e, M3.e FROM M AS M1, M AS M2, M AS M3, M AS M4 \
                      WHERE M1.c = M2.c AND M2.e = M3.e AND M3.c = M4.c AND M4.e = M1.e \
                      ORDER BY M1.e + M3.e LIMIT 200";

    let pooled = RankedQueryServer::new(ServerConfig {
        exec_threads: 2,
        ..ServerConfig::default()
    });
    pooled.catalog().register("m", make_db());
    let serial = RankedQueryServer::new(ServerConfig {
        exec_threads: 1,
        ..ServerConfig::default()
    });
    serial.catalog().register("m", make_db());

    let mut pooled_client = LocalClient::new(Arc::clone(&pooled));
    let mut serial_client = LocalClient::new(serial);

    let before = pooled_client.stats().unwrap();
    assert_eq!(before.exec_pool_threads, 2);
    assert_eq!(before.enumeration.pool_tasks, 0);

    let opened = pooled_client.open("m", four_cycle).unwrap();
    assert_eq!(opened.algorithm, "cyclic-ghd");
    let after = pooled_client.stats().unwrap();
    assert!(
        after.enumeration.pool_tasks > 0,
        "cyclic preprocessing must run on the shared pool"
    );

    // Determinism across thread counts, end to end through the server.
    let pooled_rows = pooled_client.fetch(opened.session, 1_000).unwrap().rows;
    let serial_rows = serial_client.query("m", four_cycle).unwrap().rows;
    assert!(!pooled_rows.is_empty());
    assert_eq!(pooled_rows, serial_rows);
}

#[test]
fn catalog_updates_do_not_disturb_live_sessions() {
    let server = server_with_db(Duration::from_secs(60));
    let mut client = LocalClient::new(Arc::clone(&server));
    let opened = client.open("dblp", TWO_HOP).unwrap();
    let before = client.fetch(opened.session, 4).unwrap().rows;

    // Swap the database under the same name mid-session.
    let mut tiny = Database::new();
    tiny.add_relation(
        Relation::with_tuples("AP", attrs(["aid", "pid"]), vec![vec![7, 1]]).unwrap(),
    )
    .unwrap();
    server.catalog().register("dblp", tiny);

    // The live cursor keeps streaming from its original snapshot...
    let after = client.fetch(opened.session, 4).unwrap().rows;
    assert_eq!(before.len(), 4);
    assert_eq!(after.len(), 4);
    assert_ne!(before, after, "pages advance");
    // ...while new sessions see the replacement — and because the cache
    // key includes the registration generation, the statement is
    // re-planned against the new schema instead of reusing the stale plan.
    let fresh = client.query("dblp", TWO_HOP).unwrap();
    assert!(!fresh.plan_cached, "replacement database must re-plan");
    assert_eq!(fresh.rows, vec![vec![7, 7]]);
}

/// The sample value of `metric` in a Prometheus exposition (0 if the
/// metric has not been registered yet — the registry is process-global,
/// so tests assert on deltas).
fn sample(body: &str, metric: &str) -> f64 {
    body.lines()
        .find(|l| l.split(' ').next() == Some(metric))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn metrics_exposition_covers_spans_latencies_and_ttfa() {
    // Cyclic database: a triangle query forces GHD bag materialisation,
    // so the OPEN must populate the `preprocess.bags` span histogram.
    let mut db = Database::new();
    let mut rows = Vec::new();
    for a in 0..8u64 {
        for b in 0..8u64 {
            if a != b {
                rows.push(vec![a, b]);
            }
        }
    }
    db.add_relation(Relation::with_tuples("E", attrs(["s", "t"]), rows).unwrap())
        .unwrap();
    let triangle = "SELECT DISTINCT E1.s, E2.s FROM E AS E1, E AS E2, E AS E3 \
                    WHERE E1.t = E2.s AND E2.t = E3.s AND E3.t = E1.s \
                    ORDER BY E1.s + E2.s LIMIT 50";

    let server = RankedQueryServer::new(ServerConfig::default());
    server.catalog().register("g", db);
    let mut client = LocalClient::new(Arc::clone(&server));

    // The registry is process-global: measure deltas, not absolutes.
    let before = client.metrics().unwrap();
    re_obs::validate_exposition(&before).expect("well-formed exposition before any session");
    let bags_before = sample(&before, "re_span_preprocess_bags_seconds_count");
    let open_before = sample(&before, "re_server_open_seconds_count");
    let fetch_before = sample(&before, "re_server_fetch_seconds_count");
    let ttfa_before = sample(&before, "re_cursor_ttfa_seconds_count");

    let opened = client.open("g", triangle).unwrap();
    assert_eq!(opened.algorithm, "cyclic-ghd");
    let after_open = client.metrics().unwrap();
    re_obs::validate_exposition(&after_open).expect("well-formed exposition after OPEN");
    assert!(
        sample(&after_open, "re_span_preprocess_bags_seconds_count") >= bags_before + 1.0,
        "a cyclic OPEN must record a preprocess.bags span"
    );
    assert!(sample(&after_open, "re_server_open_seconds_count") >= open_before + 1.0);

    let page = client.fetch(opened.session, 5).unwrap();
    assert!(!page.rows.is_empty());
    let after_fetch = client.metrics().unwrap();
    re_obs::validate_exposition(&after_fetch).expect("well-formed exposition after FETCH");
    assert!(
        sample(&after_fetch, "re_server_fetch_seconds_count") >= fetch_before + 1.0,
        "a FETCH must record into the fetch-latency histogram"
    );
    assert!(
        sample(&after_fetch, "re_cursor_ttfa_seconds_count") >= ttfa_before + 1.0,
        "the first answer must record time-to-first-answer"
    );

    // The summary shape the ROADMAP's p50/p99 targets will be read from.
    for metric in ["re_server_open_seconds", "re_server_fetch_seconds"] {
        for quantile in ["0.5", "0.99"] {
            let line = format!("{metric}{{quantile=\"{quantile}\"}}");
            assert!(
                after_fetch.lines().any(|l| l.starts_with(&line)),
                "missing {line} in exposition"
            );
        }
    }
    // Scalar counters from the stats report ride along.
    assert!(sample(&after_fetch, "re_sessions_opened") >= 1.0);
    assert!(sample(&after_fetch, "re_enum_answers") >= 1.0);

    // The same body arrives intact over TCP (multi-line text inside one
    // JSON string).
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", &ServerConfig::default()).unwrap();
    let mut tcp = TcpClient::connect(handle.addr()).unwrap();
    let scraped = tcp.metrics().unwrap();
    re_obs::validate_exposition(&scraped).expect("well-formed exposition over TCP");
    assert!(scraped.contains("re_span_preprocess_bags_seconds_count"));
    handle.shutdown();
}

#[test]
fn explain_and_explain_analyze_over_the_protocol() {
    let server = server_with_db(Duration::from_secs(60));
    let mut client = LocalClient::new(Arc::clone(&server));

    let plan = client.explain("dblp", TWO_HOP, false).unwrap();
    assert!(plan.starts_with("EXPLAIN\n"), "{plan}");
    assert!(plan.contains("algorithm: acyclic"), "{plan}");
    assert!(
        plan.contains("join tree (rooted, projection-pruned):"),
        "{plan}"
    );
    assert!(
        !plan.contains("execution:"),
        "plain EXPLAIN must not execute"
    );

    let analyzed = client.explain("dblp", TWO_HOP, true).unwrap();
    assert!(analyzed.starts_with("EXPLAIN ANALYZE\n"), "{analyzed}");
    assert!(analyzed.contains("execution:"), "{analyzed}");
    assert!(analyzed.contains("answers:"), "{analyzed}");
    assert!(analyzed.contains("trace:"), "{analyzed}");

    // An EXPLAIN prefix written in the SQL text overrides the flag.
    let prefixed = client
        .explain("dblp", &format!("EXPLAIN ANALYZE {TWO_HOP}"), false)
        .unwrap();
    assert!(prefixed.starts_with("EXPLAIN ANALYZE\n"), "{prefixed}");

    // Failures arrive as server errors, not panics.
    assert!(client.explain("nope", TWO_HOP, false).is_err());
    assert!(client
        .explain("dblp", "SELECT AP.aid FROM AP", false)
        .is_err());

    // The same request works across the wire.
    let handle = serve(Arc::clone(&server), "127.0.0.1:0", &ServerConfig::default()).unwrap();
    let mut tcp = TcpClient::connect(handle.addr()).unwrap();
    let over_tcp = tcp.explain("dblp", TWO_HOP, true).unwrap();
    assert!(over_tcp.starts_with("EXPLAIN ANALYZE\n"), "{over_tcp}");
    assert!(over_tcp.contains("execution:"), "{over_tcp}");
    handle.shutdown();
}

#[test]
fn stats_expose_per_worker_pool_counters() {
    let mut db = Database::new();
    let mut rows = Vec::new();
    for i in 0..60u64 {
        rows.push(vec![i % 12, 100 + i % 9]);
        rows.push(vec![(i * 5 + 3) % 12, 100 + i % 9]);
    }
    let mut rel = Relation::with_tuples("M", attrs(["e", "c"]), rows).unwrap();
    rel.dedup_tuples();
    db.add_relation(rel).unwrap();
    let four_cycle = "SELECT DISTINCT M1.e, M3.e FROM M AS M1, M AS M2, M AS M3, M AS M4 \
                      WHERE M1.c = M2.c AND M2.e = M3.e AND M3.c = M4.c AND M4.e = M1.e \
                      ORDER BY M1.e + M3.e LIMIT 50";

    let server = RankedQueryServer::new(ServerConfig {
        exec_threads: 2,
        ..ServerConfig::default()
    });
    server.catalog().register("m", db);
    let mut client = LocalClient::new(Arc::clone(&server));
    let opened = client.open("m", four_cycle).unwrap();
    assert_eq!(opened.algorithm, "cyclic-ghd");

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.per_worker.len(),
        3,
        "two pool workers plus the trailing caller slot"
    );
    // The per-worker slices partition the aggregates exactly: both are
    // bumped together at every task completion.
    let tasks: u64 = stats.per_worker.iter().map(|w| w.tasks).sum();
    let steals: u64 = stats.per_worker.iter().map(|w| w.steals).sum();
    assert!(tasks > 0, "cyclic preprocessing must run pool tasks");
    assert_eq!(tasks, stats.enumeration.pool_tasks);
    assert_eq!(steals, stats.enumeration.pool_steals);

    // And the exposition carries them as labeled samples.
    let body = client.metrics().unwrap();
    re_obs::validate_exposition(&body).expect("well-formed exposition with labeled samples");
    assert!(
        body.contains("re_exec_worker_tasks{worker=\"0\"}"),
        "{body}"
    );
    assert!(
        body.contains("re_exec_worker_tasks{worker=\"1\"}"),
        "{body}"
    );
    assert!(
        body.contains("re_exec_worker_busy_micros{worker=\"caller\"}"),
        "{body}"
    );
}

#[test]
fn sampled_opens_push_request_traces_into_the_ring() {
    let server = RankedQueryServer::new(ServerConfig {
        trace_sample: 1, // trace every OPEN
        ..ServerConfig::default()
    });
    server.catalog().register("dblp", coauthor_db());
    let mut client = LocalClient::new(Arc::clone(&server));
    let opened = client.open("dblp", TWO_HOP).unwrap();
    assert!(!opened.columns.is_empty());

    // The trace ring is process-global; find this server's OPEN trace.
    let traces = re_obs::global().recent_traces();
    let trace = traces
        .iter()
        .rev()
        .find(|t| t.name == "server.open")
        .expect("a fully-sampled OPEN must push its trace");
    assert!(
        trace.spans.iter().any(|s| s.name == "preprocess.reduce"),
        "the OPEN's preprocessing spans belong to the request trace"
    );
    let json = trace.to_chrome_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("preprocess.reduce"));
}
