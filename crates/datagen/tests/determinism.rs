//! Cross-generator determinism and shape invariants.
//!
//! Every benchmark and every equivalence test keys its reproducibility off
//! these generators being pure functions of their configuration (seed
//! included), so this suite locks that property down for all of them, plus
//! the basic shape guarantees the workloads rely on.

use re_datagen::{
    worst_case_path_instance, BipartiteConfig, BipartiteDataset, GraphConfig, GraphDataset,
    LdbcConfig, LdbcDataset, ZipfSampler,
};
use re_storage::{DegreeIndex, Relation};
use std::collections::HashSet;

fn rows(r: &Relation) -> Vec<Vec<u64>> {
    r.iter().map(|t| t.to_vec()).collect()
}

#[test]
fn zipf_sampler_is_deterministic_per_seed() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = ZipfSampler::new(64, 1.1);
    let draw = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1000).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
    };
    assert_eq!(draw(5), draw(5));
    assert_ne!(draw(5), draw(6));
    assert!(draw(5).iter().all(|&r| r < 64));
}

#[test]
fn zipf_skew_orders_bucket_masses() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let z = ZipfSampler::new(32, 1.2);
    let mut rng = StdRng::seed_from_u64(1);
    let mut counts = vec![0usize; 32];
    for _ in 0..20_000 {
        counts[z.sample(&mut rng)] += 1;
    }
    assert!(counts[0] > counts[8]);
    assert!(counts[8] > counts[31]);
}

#[test]
fn bipartite_datasets_are_deterministic_including_weights() {
    let cfg = || BipartiteConfig::imdb_like(800, 99);
    let a = BipartiteDataset::generate(cfg());
    let b = BipartiteDataset::generate(cfg());
    assert_eq!(rows(&a.relation), rows(&b.relation));
    assert_eq!(a.left_random_weights, b.left_random_weights);
    assert_eq!(a.right_random_weights, b.right_random_weights);
    assert_eq!(a.left_log_weights, b.left_log_weights);
    assert_eq!(a.right_log_weights, b.right_log_weights);

    let mut other_seed = BipartiteConfig::imdb_like(800, 100);
    other_seed.seed = 100;
    let c = BipartiteDataset::generate(other_seed);
    assert_ne!(rows(&a.relation), rows(&c.relation));
}

#[test]
fn bipartite_shape_edges_distinct_and_within_domains() {
    let cfg = BipartiteConfig::dblp_like(1500, 3);
    let left = cfg.left_entities as u64;
    let right = cfg.right_entities as u64;
    let ds = BipartiteDataset::generate(cfg);
    assert_eq!(ds.relation.len(), 1500);
    assert_eq!(ds.relation.arity(), 2);
    let mut seen = HashSet::new();
    for t in ds.relation.iter() {
        assert!(seen.insert(t.to_vec()), "duplicate edge");
        assert!((1..=left).contains(&t[0]), "left id {} out of domain", t[0]);
        assert!(
            (1..=right).contains(&t[1]),
            "right id {} out of domain",
            t[1]
        );
    }
}

#[test]
fn graph_datasets_are_deterministic_and_loop_free() {
    let a = GraphDataset::generate(GraphConfig::new(300, 2000, 17));
    let b = GraphDataset::generate(GraphConfig::new(300, 2000, 17));
    let c = GraphDataset::generate(GraphConfig::new(300, 2000, 18));
    assert_eq!(rows(&a.edges), rows(&b.edges));
    assert_eq!(a.random_weights, b.random_weights);
    assert_ne!(rows(&a.edges), rows(&c.edges));
    assert_eq!(a.edges.len(), 2000);
    assert!(a.edges.iter().all(|t| t[0] != t[1]), "no self loops");
}

#[test]
fn graph_degrees_are_skewed() {
    let g = GraphDataset::generate(GraphConfig::new(500, 6000, 23));
    let deg = DegreeIndex::build(&g.edges, &"src".into()).unwrap();
    let avg = g.edges.len() as f64 / deg.distinct_values() as f64;
    assert!(
        deg.max_degree() as f64 > 3.0 * avg,
        "zipf endpoints should concentrate mass: max {} avg {avg}",
        deg.max_degree()
    );
}

#[test]
fn ldbc_datasets_are_deterministic() {
    let a = LdbcDataset::generate(LdbcConfig::new(2, 7));
    let b = LdbcDataset::generate(LdbcConfig::new(2, 7));
    let c = LdbcDataset::generate(LdbcConfig::new(2, 8));
    let parts = |d: &LdbcDataset| {
        [
            rows(&d.knows),
            rows(&d.post_creator),
            rows(&d.likes),
            rows(&d.forum_member),
        ]
    };
    assert_eq!(parts(&a), parts(&b));
    assert_eq!(a.person_weights, b.person_weights);
    assert_ne!(
        parts(&a),
        parts(&c),
        "different seeds must change the instance"
    );
    // Knows is a symmetric friendship graph.
    let knows: HashSet<(u64, u64)> = a.knows.iter().map(|t| (t[0], t[1])).collect();
    assert!(!knows.is_empty());
    assert!(knows.iter().all(|&(x, y)| knows.contains(&(y, x))));
}

#[test]
fn worst_case_instance_shape_matches_appendix_b() {
    for (arms, n) in [(2usize, 30usize), (3, 20), (4, 10)] {
        let db = worst_case_path_instance(arms, n);
        assert_eq!(db.relation_count(), arms);
        assert_eq!(db.size(), arms * n);
        for i in 1..=arms {
            let rel = db.relation(&format!("R{i}")).unwrap();
            assert_eq!(rel.len(), n);
            // every tuple attaches a distinct x to the single join value 1
            assert!(rel.iter().all(|t| t[1] == 1));
            let xs: HashSet<u64> = rel.iter().map(|t| t[0]).collect();
            assert_eq!(xs.len(), n);
        }
    }
}

#[test]
fn worst_case_instance_is_seedless_and_stable() {
    let a = worst_case_path_instance(3, 25);
    let b = worst_case_path_instance(3, 25);
    for i in 1..=3 {
        let name = format!("R{i}");
        assert_eq!(
            rows(a.relation(&name).unwrap()),
            rows(b.relation(&name).unwrap())
        );
    }
}
