//! Generalized hypertree decompositions (GHDs) for cyclic queries.
//!
//! Theorem 3 of the paper evaluates a cyclic join-project query by
//! materialising, for every bag of a GHD, the join of the atoms assigned to
//! that bag projected onto the bag's attributes; the residual query over the
//! bag relations is acyclic and is handed to the acyclic enumerator.
//!
//! This module provides:
//! * [`GhdPlan::single_bag`] — the always-correct fallback (one bag holding
//!   the whole query, i.e. full materialisation),
//! * [`GhdPlan::for_cycle`] — the width-2 decomposition of an `n`-cycle from
//!   Figure 2 of the paper (bags `{A_1, A_i, A_{i+1}}`),
//! * [`GhdPlan::for_cycle_split`] — the two-bag decomposition that cuts a
//!   declaration-order cycle into two contiguous arcs,
//! * [`GhdPlan::cost_based`] — selection among all of the above by the
//!   AGM / fractional-edge-cover bound over the instance's relation
//!   cardinalities, picking the plan with the smallest total bag estimate,
//! * [`GhdPlan::new`] — explicit construction for hand-crafted plans such as
//!   the bowtie query, with validation of the GHD properties that matter
//!   for correctness (every atom covered by some bag it is contained in).
//!
//! Cost-based selection matters because syntactic width is a poor proxy for
//! bag size: on the membership 6-cycle, the Figure-2 plan's middle bags are
//! *intrinsically* cartesian products of two projections (~|M|² tuples at
//! equal cardinalities), while the balanced two-arc split keeps every bag at
//! the size of a 2-path — the AGM sum (2·N² vs 4·N²) prefers the split.

use crate::error::QueryError;
use crate::query::JoinProjectQuery;
use re_storage::{Attr, Database};
use std::collections::BTreeSet;

/// One bag of a GHD: its attribute set and the atoms (by index into the
/// query's atom list) joined to materialise it. The atom list must include
/// every atom whose variables are fully contained in the bag that was
/// *assigned* to this bag, plus enough atoms to cover all bag attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bag {
    /// A name for the materialised bag relation.
    pub name: String,
    /// The bag attributes `B_t`, in output order of the materialised relation.
    pub attrs: Vec<Attr>,
    /// Indices of the query atoms joined to produce this bag.
    pub atoms: Vec<usize>,
}

/// A GHD-based evaluation plan for a (possibly cyclic) join-project query.
#[derive(Clone, Debug)]
pub struct GhdPlan {
    bags: Vec<Bag>,
    /// How the plan was derived — `"explicit"`, `"single-bag"`,
    /// `"cycle-figure2"` or `"cycle-split(s,t)"`.
    shape: String,
    /// Total AGM bag-size estimate from cost-based selection, when one ran.
    estimated_rows: Option<f64>,
    /// Per-bag AGM estimates (same order as `bags`), when cost-based
    /// selection ran. Summing them gives `estimated_rows`.
    bag_estimates: Option<Vec<f64>>,
}

/// The outcome of [`GhdPlan::cost_based`]: the winning plan together with
/// how many candidates competed and whether the Figure-2 cycle template was
/// rejected on the way (the reason is preserved instead of swallowed).
#[derive(Clone, Debug)]
pub struct PlanSelection {
    /// The minimum-estimate plan.
    pub plan: GhdPlan,
    /// Number of valid candidate plans compared.
    pub considered: usize,
    /// Why [`GhdPlan::for_cycle`] was not a candidate, if it failed.
    pub cycle_error: Option<String>,
}

impl GhdPlan {
    /// Build and validate a plan from explicit bags.
    ///
    /// Validation checks the two properties Theorem 3 needs:
    /// 1. every query atom is contained in (covered by) at least one bag
    ///    that also joins it, so the bag join is a superset-free refinement
    ///    of the original join;
    /// 2. every bag attribute is covered by at least one of the bag's atoms.
    pub fn new(query: &JoinProjectQuery, bags: Vec<Bag>) -> Result<Self, QueryError> {
        if bags.is_empty() {
            return Err(QueryError::InvalidGhd("no bags".into()));
        }
        for bag in &bags {
            let bag_attrs: BTreeSet<&Attr> = bag.attrs.iter().collect();
            if bag.atoms.is_empty() {
                return Err(QueryError::InvalidGhd(format!(
                    "bag '{}' joins no atoms",
                    bag.name
                )));
            }
            for &ai in &bag.atoms {
                if ai >= query.atoms().len() {
                    return Err(QueryError::InvalidGhd(format!(
                        "bag '{}' references atom index {ai} out of range",
                        bag.name
                    )));
                }
            }
            let covered: BTreeSet<&Attr> = bag
                .atoms
                .iter()
                .flat_map(|&ai| query.atoms()[ai].vars.iter())
                .collect();
            for a in &bag.attrs {
                if !covered.contains(a) {
                    return Err(QueryError::InvalidGhd(format!(
                        "bag '{}' attribute '{a}' is not covered by its atoms",
                        bag.name
                    )));
                }
            }
            // bag attrs must not repeat
            if bag_attrs.len() != bag.attrs.len() {
                return Err(QueryError::InvalidGhd(format!(
                    "bag '{}' repeats an attribute",
                    bag.name
                )));
            }
        }
        // every atom must be contained in some bag that joins it
        for (ai, atom) in query.atoms().iter().enumerate() {
            let ok = bags.iter().any(|bag| {
                bag.atoms.contains(&ai) && atom.vars.iter().all(|v| bag.attrs.contains(v))
            });
            if !ok {
                return Err(QueryError::InvalidGhd(format!(
                    "atom '{}' is not contained in any bag that joins it",
                    atom.name
                )));
            }
        }
        // every projection attribute must appear in some bag
        for p in query.projection() {
            if !bags.iter().any(|bag| bag.attrs.contains(p)) {
                return Err(QueryError::InvalidGhd(format!(
                    "projection attribute '{p}' does not appear in any bag"
                )));
            }
        }
        Ok(GhdPlan {
            bags,
            shape: "explicit".to_string(),
            estimated_rows: None,
            bag_estimates: None,
        })
    }

    /// Re-label the plan with the template it came from.
    fn with_shape(mut self, shape: impl Into<String>) -> Self {
        self.shape = shape.into();
        self
    }

    /// The trivial single-bag plan: materialise the entire join. Always
    /// correct; width equals the number of atoms.
    pub fn single_bag(query: &JoinProjectQuery) -> Self {
        let attrs: Vec<Attr> = {
            let mut seen = BTreeSet::new();
            let mut out = Vec::new();
            for atom in query.atoms() {
                for v in &atom.vars {
                    if seen.insert(v.clone()) {
                        out.push(v.clone());
                    }
                }
            }
            out
        };
        GhdPlan {
            bags: vec![Bag {
                name: "bag0".to_string(),
                attrs,
                atoms: (0..query.atoms().len()).collect(),
            }],
            shape: "single-bag".to_string(),
            estimated_rows: None,
            bag_estimates: None,
        }
    }

    /// The width-2 GHD of an `n`-cycle query
    /// `R_1(A_1,A_2) ⋈ R_2(A_2,A_3) ⋈ ... ⋈ R_n(A_n,A_1)` where atom `i`
    /// (0-based) joins variables `vars[i]` and `vars[(i+1) % n]`.
    ///
    /// Bags follow Figure 2 (leftmost) of the paper: `{A_1, A_i, A_{i+1}}`
    /// for `i = 2..n-1`, each covered by the consecutive edge `R_i` together
    /// with `R_n(A_n, A_1)` (which supplies `A_1`); `R_1` is assigned to the
    /// first bag and `R_n` to the last.
    pub fn for_cycle(query: &JoinProjectQuery) -> Result<Self, QueryError> {
        let n = query.atoms().len();
        if n < 3 {
            return Err(QueryError::InvalidGhd(
                "a cycle needs at least three atoms".into(),
            ));
        }
        // Infer the cycle variable order from the atoms: atom i = (v_i, v_{i+1}).
        for i in 0..n {
            let next = (i + 1) % n;
            let shared: BTreeSet<Attr> = query.atoms()[i]
                .var_set()
                .intersection(&query.atoms()[next].var_set())
                .cloned()
                .collect();
            if shared.is_empty() {
                return Err(QueryError::InvalidGhd(format!(
                    "atoms {i} and {next} share no variable; not a cycle in declaration order"
                )));
            }
        }
        let first_var = |i: usize| -> Attr {
            // the variable shared with the previous atom
            let prev = (i + n - 1) % n;
            let prev_vars = query.atoms()[prev].var_set();
            query.atoms()[i]
                .vars
                .iter()
                .find(|v| prev_vars.contains(*v))
                .cloned()
                .expect("checked above")
        };
        let a1 = first_var(0);
        let mut bags = Vec::new();
        for i in 1..n - 1 {
            // bag over {A_1, A_i, A_{i+1}} = {a1} ∪ vars(atom i)
            let mut attrs: Vec<Attr> = vec![a1.clone()];
            for v in &query.atoms()[i].vars {
                if *v != a1 && !attrs.contains(v) {
                    attrs.push(v.clone());
                }
            }
            let mut atoms = vec![i, n - 1];
            if i == 1 {
                atoms.push(0); // assign R_1 to the first bag
            }
            atoms.sort_unstable();
            atoms.dedup();
            bags.push(Bag {
                name: format!("cycle_bag_{i}"),
                attrs,
                atoms,
            });
        }
        GhdPlan::new(query, bags).map(|p| p.with_shape("cycle-figure2"))
    }

    /// Cut a declaration-order cycle into two contiguous arcs at atom
    /// indices `s < t`: one bag joins atoms `s..t`, the other `t..n` plus
    /// `0..s`. Each bag's attributes are the union of its atoms' variables
    /// in first-appearance order, so every atom is contained in its bag and
    /// the two-bag residual is trivially acyclic. Requires the same
    /// consecutive-sharing property as [`GhdPlan::for_cycle`].
    pub fn for_cycle_split(
        query: &JoinProjectQuery,
        s: usize,
        t: usize,
    ) -> Result<Self, QueryError> {
        let n = query.atoms().len();
        if n < 3 {
            return Err(QueryError::InvalidGhd(
                "a cycle needs at least three atoms".into(),
            ));
        }
        if s >= t || t > n || t - s >= n {
            return Err(QueryError::InvalidGhd(format!(
                "invalid cycle split ({s}, {t}) for {n} atoms"
            )));
        }
        for i in 0..n {
            let next = (i + 1) % n;
            if query.atoms()[i]
                .var_set()
                .intersection(&query.atoms()[next].var_set())
                .next()
                .is_none()
            {
                return Err(QueryError::InvalidGhd(format!(
                    "atoms {i} and {next} share no variable; not a cycle in declaration order"
                )));
            }
        }
        let arc_bag = |name: String, atoms: Vec<usize>| -> Bag {
            let mut seen = BTreeSet::new();
            let mut attrs = Vec::new();
            for &ai in &atoms {
                for v in &query.atoms()[ai].vars {
                    if seen.insert(v.clone()) {
                        attrs.push(v.clone());
                    }
                }
            }
            Bag { name, attrs, atoms }
        };
        let first: Vec<usize> = (s..t).collect();
        let second: Vec<usize> = (t..n).chain(0..s).collect();
        let bags = vec![
            arc_bag(format!("arc_bag_{s}_{t}"), first),
            arc_bag(format!("arc_bag_{t}_{s}"), second),
        ];
        GhdPlan::new(query, bags).map(|p| p.with_shape(format!("cycle-split({s},{t})")))
    }

    /// Pick the candidate plan minimising the summed AGM bag-size estimate
    /// over the instance's relation cardinalities.
    ///
    /// Candidates are the Figure-2 cycle template and every contiguous
    /// two-arc split of the declaration-order cycle; candidates whose
    /// construction or validation fails are dropped (and the Figure-2
    /// failure reason is reported, not swallowed). The single-bag plan is
    /// deliberately *not* a candidate — its AGM bound equals the output
    /// bound and would degenerately win on short cycles while forcing full
    /// materialisation — it is only the fallback when no decomposition
    /// validates. Ties break towards fewer bags, then towards the earlier
    /// candidate, so the selection is deterministic. The winner carries its
    /// estimate in [`GhdPlan::estimated_rows`].
    pub fn cost_based(
        query: &JoinProjectQuery,
        db: &Database,
    ) -> Result<PlanSelection, QueryError> {
        let n = query.atoms().len();
        if n == 0 {
            return Err(QueryError::NoAtoms);
        }
        let cards: Vec<f64> = query
            .atoms()
            .iter()
            .map(|atom| {
                db.relation(&atom.relation)
                    .map(|r| r.len().max(1) as f64)
                    .map_err(|e| QueryError::InvalidGhd(format!("cost model: {e}")))
            })
            .collect::<Result<_, _>>()?;
        let mut candidates: Vec<GhdPlan> = Vec::new();
        let mut cycle_error = None;
        match GhdPlan::for_cycle(query) {
            Ok(p) => candidates.push(p),
            Err(e) => cycle_error = Some(e.to_string()),
        }
        // Every unordered pair of cut points yields one two-arc partition.
        for s in 0..n {
            for t in s + 1..n {
                if let Ok(p) = GhdPlan::for_cycle_split(query, s, t) {
                    candidates.push(p);
                }
            }
        }
        if candidates.is_empty() {
            // Not a declaration-order cycle: full materialisation is the
            // only plan we can build without a general GHD search.
            return Ok(PlanSelection {
                plan: GhdPlan::single_bag(query),
                considered: 1,
                cycle_error,
            });
        }
        let considered = candidates.len();
        let mut best: Option<(f64, usize, usize)> = None; // (cost, bags, index)
        for (i, plan) in candidates.iter().enumerate() {
            let cost: f64 = plan
                .bags
                .iter()
                .map(|bag| agm_estimate(query, &cards, bag))
                .sum();
            let key = (cost, plan.len(), i);
            let better = match &best {
                None => true,
                Some((bc, bb, _)) => cost < *bc || (cost == *bc && plan.len() < *bb),
            };
            if better {
                best = Some(key);
            }
        }
        let (cost, _, idx) = best.expect("candidates checked non-empty");
        let mut plan = candidates.swap_remove(idx);
        plan.estimated_rows = Some(cost);
        plan.bag_estimates = Some(
            plan.bags
                .iter()
                .map(|bag| agm_estimate(query, &cards, bag))
                .collect(),
        );
        Ok(PlanSelection {
            plan,
            considered,
            cycle_error,
        })
    }

    /// The bags of the plan.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// How the plan was derived (`"explicit"`, `"single-bag"`,
    /// `"cycle-figure2"`, `"cycle-split(s,t)"`).
    pub fn shape(&self) -> &str {
        &self.shape
    }

    /// The summed AGM bag-size estimate, when the plan came out of
    /// [`GhdPlan::cost_based`].
    pub fn estimated_rows(&self) -> Option<f64> {
        self.estimated_rows
    }

    /// Per-bag AGM estimates in bag order, when the plan came out of
    /// [`GhdPlan::cost_based`]; the entries sum to
    /// [`GhdPlan::estimated_rows`].
    pub fn bag_estimates(&self) -> Option<&[f64]> {
        self.bag_estimates.as_deref()
    }

    /// Number of bags.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether the plan has no bags (never true for validated plans).
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// The largest number of atoms joined inside a single bag — a proxy for
    /// the integral edge-cover width of the plan.
    pub fn max_bag_atoms(&self) -> usize {
        self.bags.iter().map(|b| b.atoms.len()).max().unwrap_or(0)
    }
}

/// The AGM bound on one bag: `exp(Σ x_i · ln |R_i|)` for a minimum
/// fractional edge cover `x` of the bag's attributes by the bag's atoms.
///
/// Half-integral covers suffice for an optimum on the graph-shaped
/// (arity ≤ 2) queries this engine targets, so for up to ten atoms the
/// exact minimum is found by brute force over `x_i ∈ {0, ½, 1}`; larger
/// bags fall back to a greedy integral cover. Attributes no atom covers
/// make the bag infeasible (`+∞`), which [`GhdPlan::new`] already rejects.
fn agm_estimate(query: &JoinProjectQuery, cards: &[f64], bag: &Bag) -> f64 {
    let atom_vars: Vec<BTreeSet<Attr>> = bag
        .atoms
        .iter()
        .map(|&ai| query.atoms()[ai].var_set())
        .collect();
    let log_cards: Vec<f64> = bag.atoms.iter().map(|&ai| cards[ai].ln()).collect();
    let attrs = &bag.attrs;
    let m = atom_vars.len();
    if m <= 10 {
        // x_i ∈ {0, 1/2, 1} encoded in base 3.
        let mut best = f64::INFINITY;
        let combos = 3usize.pow(m as u32);
        'combo: for c in 0..combos {
            let mut weight = 0.0f64;
            let mut x = [0.0f64; 10];
            let mut rest = c;
            for i in 0..m {
                x[i] = (rest % 3) as f64 * 0.5;
                rest /= 3;
                weight += x[i] * log_cards[i];
            }
            if weight >= best {
                continue;
            }
            for a in attrs {
                let covered: f64 = (0..m)
                    .filter(|&i| atom_vars[i].contains(a))
                    .map(|i| x[i])
                    .sum();
                if covered < 1.0 {
                    continue 'combo;
                }
            }
            best = weight;
        }
        best.exp()
    } else {
        // Greedy integral cover: repeatedly take the atom covering the most
        // uncovered attributes (smaller relation, then lower index on ties).
        let mut uncovered: BTreeSet<&Attr> = attrs.iter().collect();
        let mut weight = 0.0f64;
        while !uncovered.is_empty() {
            let pick = (0..m)
                .map(|i| {
                    let gain = uncovered
                        .iter()
                        .filter(|a| atom_vars[i].contains(**a))
                        .count();
                    (gain, i)
                })
                .max_by(|(ga, ia), (gb, ib)| {
                    ga.cmp(gb)
                        .then(
                            log_cards[*ib]
                                .partial_cmp(&log_cards[*ia])
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(ib.cmp(ia))
                });
            match pick {
                Some((gain, i)) if gain > 0 => {
                    uncovered.retain(|a| !atom_vars[i].contains(*a));
                    weight += log_cards[i];
                }
                _ => return f64::INFINITY,
            }
        }
        weight.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn four_cycle() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap()
    }

    #[test]
    fn single_bag_covers_everything() {
        let q = four_cycle();
        let plan = GhdPlan::single_bag(&q);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.bags()[0].atoms.len(), 4);
        assert_eq!(plan.bags()[0].attrs.len(), 4);
    }

    #[test]
    fn cycle_ghd_for_four_cycle_has_two_bags() {
        let q = four_cycle();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        assert_eq!(plan.len(), 2);
        for bag in plan.bags() {
            assert_eq!(bag.attrs.len(), 3);
            assert!(bag.attrs.contains(&Attr::new("a1")));
        }
        // every atom appears in some bag
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for bag in plan.bags() {
            seen.extend(bag.atoms.iter().copied());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn cycle_ghd_for_six_cycle_has_four_bags() {
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a1", "a2"])
            .atom("R2", "E", ["a2", "a3"])
            .atom("R3", "E", ["a3", "a4"])
            .atom("R4", "E", ["a4", "a5"])
            .atom("R5", "E", ["a5", "a6"])
            .atom("R6", "E", ["a6", "a1"])
            .project(["a1", "a4"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&q).unwrap();
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn explicit_plan_validation_rejects_uncovered_atom() {
        let q = four_cycle();
        // one bag that forgets atoms 2 and 3
        let bags = vec![Bag {
            name: "b".into(),
            attrs: vec![Attr::new("a1"), Attr::new("a2"), Attr::new("a3")],
            atoms: vec![0, 1],
        }];
        assert!(GhdPlan::new(&q, bags).is_err());
    }

    #[test]
    fn explicit_plan_validation_rejects_uncovered_attr() {
        let q = four_cycle();
        let bags = vec![Bag {
            name: "b".into(),
            attrs: vec![Attr::new("a1"), Attr::new("zzz")],
            atoms: vec![0, 1, 2, 3],
        }];
        assert!(GhdPlan::new(&q, bags).is_err());
    }

    #[test]
    fn cycle_ghd_rejects_non_cycle_declaration() {
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a", "b"])
            .atom("R2", "E", ["c", "d"])
            .atom("R3", "E", ["e", "f"])
            .project(["a"])
            .build()
            .unwrap();
        assert!(GhdPlan::for_cycle(&q).is_err());
    }

    fn six_cycle_membership() -> JoinProjectQuery {
        QueryBuilder::new()
            .atom("M1", "M", ["a1", "p1"])
            .atom("M2", "M", ["a2", "p1"])
            .atom("M3", "M", ["a2", "p2"])
            .atom("M4", "M", ["a3", "p2"])
            .atom("M5", "M", ["a3", "p3"])
            .atom("M6", "M", ["a1", "p3"])
            .project(["a1", "a2"])
            .build()
            .unwrap()
    }

    fn db_with(name: &str, attrs_: [&str; 2], rows: usize) -> re_storage::Database {
        let mut rel =
            re_storage::Relation::new(name, attrs_.iter().map(Attr::new).collect::<Vec<_>>());
        for i in 0..rows {
            rel.push(&[i as u64 + 1, (i % 7) as u64 + 1]).unwrap();
        }
        let mut db = re_storage::Database::new();
        db.add_relation(rel).unwrap();
        db
    }

    #[test]
    fn cycle_split_builds_two_arc_bags() {
        let q = six_cycle_membership();
        let plan = GhdPlan::for_cycle_split(&q, 0, 3).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.shape(), "cycle-split(0,3)");
        assert_eq!(plan.bags()[0].atoms, vec![0, 1, 2]);
        assert_eq!(plan.bags()[1].atoms, vec![3, 4, 5]);
        let a: BTreeSet<_> = plan.bags()[0].attrs.iter().cloned().collect();
        let b: BTreeSet<_> = plan.bags()[1].attrs.iter().cloned().collect();
        let shared: Vec<_> = a.intersection(&b).collect();
        assert_eq!(shared, [&Attr::new("a1"), &Attr::new("p2")]);
        assert!(GhdPlan::for_cycle_split(&q, 0, 6).is_err());
        assert!(GhdPlan::for_cycle_split(&q, 3, 3).is_err());
    }

    #[test]
    fn cost_based_picks_the_balanced_split_for_the_six_cycle() {
        let q = six_cycle_membership();
        let db = db_with("M", ["e", "c"], 100);
        let sel = GhdPlan::cost_based(&q, &db).unwrap();
        assert!(sel.cycle_error.is_none());
        assert!(sel.considered > 10, "figure-2 + splits + single-bag");
        assert_eq!(sel.plan.len(), 2, "{}", sel.plan.shape());
        assert!(
            sel.plan.shape().starts_with("cycle-split"),
            "expected a two-arc split, got {}",
            sel.plan.shape()
        );
        // Both arcs have three atoms: the balanced cut.
        assert!(sel.plan.bags().iter().all(|b| b.atoms.len() == 3));
        let est = sel.plan.estimated_rows().unwrap();
        // 2 · N² for N = 100.
        assert!((est - 20_000.0).abs() < 1.0, "estimate {est}");
        let per_bag = sel.plan.bag_estimates().unwrap();
        assert_eq!(per_bag.len(), 2);
        let sum: f64 = per_bag.iter().sum();
        assert!((sum - est).abs() < 1e-9, "per-bag estimates sum to total");
    }

    #[test]
    fn cost_based_prefers_figure2_for_triangles() {
        let q = QueryBuilder::new()
            .atom("R1", "E", ["x", "y"])
            .atom("R2", "E", ["y", "z"])
            .atom("R3", "E", ["z", "x"])
            .project(["x", "y"])
            .build()
            .unwrap();
        let db = db_with("E", ["s", "t"], 50);
        let sel = GhdPlan::cost_based(&q, &db).unwrap();
        // One N² bag beats any split carrying an extra N term.
        assert_eq!(sel.plan.shape(), "cycle-figure2");
        assert_eq!(sel.plan.len(), 1);
    }

    #[test]
    fn cost_based_reports_why_the_cycle_template_failed() {
        // A chorded shape: declaration order is not a cycle.
        let q = QueryBuilder::new()
            .atom("R1", "E", ["a", "b"])
            .atom("R2", "E", ["c", "d"])
            .atom("R3", "E", ["b", "c"])
            .atom("R4", "E", ["d", "a"])
            .project(["a", "c"])
            .build()
            .unwrap();
        let db = db_with("E", ["s", "t"], 30);
        let sel = GhdPlan::cost_based(&q, &db).unwrap();
        assert!(sel.cycle_error.is_some());
        assert_eq!(sel.plan.shape(), "single-bag");
    }

    #[test]
    fn agm_estimate_is_exact_on_a_product_bag() {
        // A bag whose attrs need two disjoint atoms: estimate = N².
        let q = four_cycle();
        let db = db_with("E", ["s", "t"], 9);
        let sel = GhdPlan::cost_based(&q, &db).unwrap();
        // The cheapest partitions pair one free single-atom bag (N) with a
        // three-atom bag two of whose atoms cover all four attrs (N²);
        // ties break to the earliest such split.
        assert_eq!(sel.plan.len(), 2);
        assert_eq!(sel.plan.shape(), "cycle-split(0,1)");
        assert!((sel.plan.estimated_rows().unwrap() - 90.0).abs() < 1e-6);
    }
}
