//! Generic-join (worst-case-optimal) bag materialisation.
//!
//! The left-deep hash-join cascade materialises a GHD bag through pairwise
//! intermediates, and on bags whose atoms meet only "around" the bag (the
//! membership-cycle middle bags) the first pairwise step is a cartesian
//! product far larger than the bag itself. Generic join sidesteps
//! intermediates entirely: it fixes one global attribute order per bag and
//! binds attributes one at a time, intersecting — by binary search on
//! [`re_storage::TrieIndex`] ranges — the candidate lists of every atom
//! containing the attribute. Its running time is bounded by the AGM
//! fractional-edge-cover bound on the bag (Ngo–Porat–Ré–Rudra), i.e. by the
//! worst-case bag *output*, never by an intermediate.
//!
//! The global order is the bag's output attributes in declared order
//! followed by the existential attributes in first appearance order, and
//! candidates are visited ascending, so rows come out lexicographically
//! sorted and de-duplicated — the canonical bag representation both kernels
//! in [`crate::bag`] agree on. Existential suffixes stop at the first
//! witness ([`Walker::exists`]).
//!
//! Parallelism follows the morsel contract of the `re_exec` pool: the first
//! attribute's candidate values are chunked, each chunk enumerated
//! independently, and the per-chunk outputs concatenated in chunk order —
//! byte-identical to the serial walk at any thread count.

use crate::error::JoinError;
use re_exec::ExecContext;
use re_query::{Bag, QueryError};
use re_storage::{Attr, Relation, TrieIndex, Value};
use std::collections::BTreeSet;

/// A compiled generic-join evaluation of one bag: per-atom tries over the
/// global attribute order plus, for every order level, the `(atom, depth)`
/// pairs whose attribute binds at that level.
struct GenericJoin {
    tries: Vec<TrieIndex>,
    /// `levels[l]` lists the atoms participating at order level `l`, each
    /// with the trie depth its copy of the attribute sits at.
    levels: Vec<Vec<(usize, usize)>>,
    out_arity: usize,
    /// The global attribute order (output attributes then existentials) —
    /// surfaced through [`WcojReport`] so EXPLAIN can print it.
    order: Vec<Attr>,
}

impl GenericJoin {
    fn compile(bag: &Bag, rels: &[Relation]) -> Result<Self, JoinError> {
        // Global order: output attributes first (declared order), then the
        // existential attributes in first-appearance order across atoms.
        let mut order: Vec<Attr> = bag.attrs.clone();
        let mut seen: BTreeSet<Attr> = order.iter().cloned().collect();
        for rel in rels {
            for a in rel.attrs() {
                if seen.insert(a.clone()) {
                    order.push(a.clone());
                }
            }
        }
        let level_of = |a: &Attr| order.iter().position(|o| o == a);
        let mut tries = Vec::with_capacity(rels.len());
        let mut levels: Vec<Vec<(usize, usize)>> = vec![Vec::new(); order.len()];
        for (k, rel) in rels.iter().enumerate() {
            let mut atom_attrs: Vec<Attr> = rel.attrs().to_vec();
            atom_attrs.sort_by_key(|a| level_of(a).expect("order covers all atom attrs"));
            for (d, a) in atom_attrs.iter().enumerate() {
                levels[level_of(a).expect("just sorted by it")].push((k, d));
            }
            tries.push(TrieIndex::build(rel, &atom_attrs)?);
        }
        for (l, parts) in levels.iter().enumerate() {
            if parts.is_empty() {
                return Err(JoinError::Query(QueryError::InvalidGhd(format!(
                    "bag '{}' attribute '{}' is covered by no atom",
                    bag.name, order[l]
                ))));
            }
        }
        Ok(GenericJoin {
            tries,
            levels,
            out_arity: bag.attrs.len(),
            order,
        })
    }

    /// The participant with the fewest remaining rows — the seed whose
    /// distinct values drive the intersection at `level`. Ties keep the
    /// first participant, so the choice is deterministic.
    fn seed(&self, level: usize, ranges: &[(usize, usize)]) -> (usize, usize) {
        *self.levels[level]
            .iter()
            .min_by_key(|(k, _)| ranges[*k].1 - ranges[*k].0)
            .expect("compile checked every level has a participant")
    }
}

/// The backtracking state of one enumeration walk: current per-atom trie
/// ranges, the bound prefix, a restore trail, and the output buffer.
struct Walker<'a> {
    gj: &'a GenericJoin,
    ranges: Vec<(usize, usize)>,
    bound: Vec<Value>,
    trail: Vec<(usize, (usize, usize))>,
    out: Vec<Value>,
    /// Trie range narrowings performed — one per participant per attempted
    /// binding, the unit the AGM bound actually charges. Deterministic at
    /// any thread count: the chunked parallel walk performs exactly the
    /// serial walk's bindings, just partitioned by level-0 candidate.
    intersections: u64,
}

impl<'a> Walker<'a> {
    fn new(gj: &'a GenericJoin) -> Self {
        Walker {
            gj,
            ranges: gj.tries.iter().map(|t| t.full_range()).collect(),
            bound: Vec::with_capacity(gj.levels.len()),
            trail: Vec::new(),
            out: Vec::new(),
            intersections: 0,
        }
    }

    /// Narrow every participant of `level` to `value`. Returns whether all
    /// stayed non-empty; the caller unwinds to `mark` either way.
    fn bind(&mut self, level: usize, value: Value) -> bool {
        for &(k, d) in &self.gj.levels[level] {
            let narrowed = self.gj.tries[k].narrow(self.ranges[k], d, value);
            self.intersections += 1;
            self.trail.push((k, self.ranges[k]));
            self.ranges[k] = narrowed;
            if narrowed.0 >= narrowed.1 {
                return false;
            }
        }
        true
    }

    fn unwind(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (k, r) = self.trail.pop().expect("len checked");
            self.ranges[k] = r;
        }
    }

    /// Enumerate all bindings of the output levels from `level` on,
    /// emitting each completed prefix that has an existential witness.
    fn enumerate(&mut self, level: usize) {
        if level == self.gj.out_arity {
            if self.exists(level) {
                self.out.extend_from_slice(&self.bound);
            }
            return;
        }
        let (seed_k, seed_d) = self.gj.seed(level, &self.ranges);
        let (mut lo, hi) = self.ranges[seed_k];
        let mark = self.trail.len();
        while let Some((value, end)) = self.gj.tries[seed_k].group_at(lo, hi, seed_d) {
            lo = end;
            if self.bind(level, value) {
                self.bound.push(value);
                self.enumerate(level + 1);
                self.bound.pop();
            }
            self.unwind(mark);
        }
    }

    /// First-witness check over the existential suffix: true as soon as one
    /// complete consistent extension exists.
    fn exists(&mut self, level: usize) -> bool {
        if level == self.gj.levels.len() {
            return true;
        }
        let (seed_k, seed_d) = self.gj.seed(level, &self.ranges);
        let (mut lo, hi) = self.ranges[seed_k];
        let mark = self.trail.len();
        while let Some((value, end)) = self.gj.tries[seed_k].group_at(lo, hi, seed_d) {
            lo = end;
            let found = self.bind(level, value) && self.exists(level + 1);
            self.unwind(mark);
            if found {
                return true;
            }
        }
        false
    }

    /// Enumerate with the first level restricted to `values` — the unit of
    /// level-0 parallel fan-out. `values` must be ascending for the output
    /// to stay in canonical order.
    fn enumerate_root(&mut self, values: &[Value]) {
        let mark = self.trail.len();
        for &value in values {
            if self.bind(0, value) {
                self.bound.push(value);
                self.enumerate(1);
                self.bound.pop();
            }
            self.unwind(mark);
        }
    }
}

/// Per-operator report of one generic-join bag materialisation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WcojReport {
    /// The global attribute order the walk bound (output attributes first,
    /// then existentials in first-appearance order).
    pub attr_order: Vec<Attr>,
    /// Total trie range narrowings performed — the intersection work the
    /// AGM bound charges. Identical at any thread count.
    pub intersections: u64,
}

/// Materialise one GHD bag by generic join over already-bound (and
/// typically semi-join-reduced) atom relations. The output is the
/// canonical bag representation: lexicographically sorted distinct rows
/// over `bag.attrs`, independent of thread count.
pub fn wcoj_materialize(
    bag: &Bag,
    rels: &[Relation],
    ctx: &ExecContext,
) -> Result<Relation, JoinError> {
    wcoj_materialize_reported(bag, rels, ctx).map(|(rel, _)| rel)
}

/// [`wcoj_materialize`] returning the per-operator [`WcojReport`]
/// alongside the bag relation.
pub fn wcoj_materialize_reported(
    bag: &Bag,
    rels: &[Relation],
    ctx: &ExecContext,
) -> Result<(Relation, WcojReport), JoinError> {
    let mut out = Relation::new(bag.name.clone(), bag.attrs.clone());
    if bag.attrs.is_empty() || rels.iter().any(|r| r.is_empty()) {
        return Ok((out, WcojReport::default()));
    }
    let gj = GenericJoin::compile(bag, rels)?;

    // Level-0 candidates: the distinct values of the smallest participant.
    let (seed_k, seed_d) = gj.seed(
        0,
        &gj.tries.iter().map(|t| t.full_range()).collect::<Vec<_>>(),
    );
    let (mut lo, hi) = gj.tries[seed_k].full_range();
    let mut candidates = Vec::new();
    while let Some((value, end)) = gj.tries[seed_k].group_at(lo, hi, seed_d) {
        lo = end;
        candidates.push(value);
    }

    let total_rows: usize = rels.iter().map(|r| r.len()).sum();
    let (rows, intersections) =
        if !ctx.is_parallel() || !ctx.should_parallelise(total_rows) || candidates.len() < 2 {
            // The serial walk advances one candidate chunk at a time so a
            // tripped cancel token aborts within one morsel of candidates;
            // enumerating consecutive chunks is the very same walk as
            // enumerating the full ascending candidate list.
            let step = ctx.morsel_rows().max(1);
            let mut walker = Walker::new(&gj);
            for chunk in candidates.chunks(step) {
                ctx.check_cancelled()?;
                walker.enumerate_root(chunk);
            }
            (walker.out, walker.intersections)
        } else {
            // One chunk of first-attribute candidates per task, a few tasks per
            // thread for balance; concatenating per-chunk outputs in chunk
            // order reproduces the serial (ascending-candidate) walk exactly.
            let chunk = (candidates.len()).div_ceil(ctx.threads().max(1) * 4).max(1);
            let chunks: Vec<&[Value]> = candidates.chunks(chunk).collect();
            let parts = ctx.map(chunks.len(), |i| {
                // A tripped token turns the remaining chunks into no-ops;
                // the post-map check below converts the partial output
                // into the typed cancellation error.
                if ctx.check_cancelled().is_err() {
                    return (Vec::new(), 0);
                }
                let mut walker = Walker::new(&gj);
                walker.enumerate_root(chunks[i]);
                (walker.out, walker.intersections)
            });
            ctx.check_cancelled()?;
            let mut rows = Vec::with_capacity(parts.iter().map(|(p, _)| p.len()).sum());
            let mut intersections = 0u64;
            for (p, n) in parts {
                rows.extend_from_slice(&p);
                intersections += n;
            }
            (rows, intersections)
        };
    out.reserve_rows(rows.len() / bag.attrs.len());
    out.append_rows(&rows);
    Ok((
        out,
        WcojReport {
            attr_order: gj.order,
            intersections,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use re_storage::attr::attrs;

    fn rel(name: &str, cols: [&str; 2], tuples: &[(u64, u64)]) -> Relation {
        Relation::with_tuples(name, attrs(cols), tuples.iter().map(|&(a, b)| vec![a, b])).unwrap()
    }

    fn bag(name: &str, out: &[&str], atoms: Vec<usize>) -> Bag {
        Bag {
            name: name.to_string(),
            attrs: out.iter().map(Attr::new).collect(),
            atoms,
        }
    }

    #[test]
    fn triangle_listing_matches_brute_force() {
        let edges = [(1, 2), (2, 3), (3, 1), (2, 1), (1, 3), (3, 4), (4, 1)];
        let r = rel("R", ["x", "y"], &edges);
        let s = rel("S", ["y", "z"], &edges);
        let t = rel("T", ["z", "x"], &edges);
        let b = bag("tri", &["x", "y", "z"], vec![0, 1, 2]);
        let got = wcoj_materialize(&b, &[r, s, t], &ExecContext::serial()).unwrap();
        let mut expected = Vec::new();
        for &(x, y) in &edges {
            for &(y2, z) in &edges {
                for &(z2, x2) in &edges {
                    if y == y2 && z == z2 && x == x2 {
                        expected.push(vec![x, y, z]);
                    }
                }
            }
        }
        expected.sort();
        expected.dedup();
        let rows: Vec<Vec<u64>> = got.iter().map(|t| t.to_vec()).collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn existential_attrs_project_with_first_witness() {
        // Output (x) such that some y with R(x,y) and S(y) exists.
        let r = rel("R", ["x", "y"], &[(1, 10), (1, 11), (2, 12), (3, 13)]);
        let s = rel("S", ["y", "w"], &[(11, 0), (12, 0), (12, 1)]);
        let b = bag("exist", &["x"], vec![0, 1]);
        let got = wcoj_materialize(&b, &[r, s], &ExecContext::serial()).unwrap();
        let rows: Vec<Vec<u64>> = got.iter().map(|t| t.to_vec()).collect();
        assert_eq!(rows, vec![vec![1], vec![2]]);
    }

    #[test]
    fn parallel_walk_is_byte_identical_to_serial() {
        let mut edges = Vec::new();
        for i in 0..40u64 {
            edges.push((i % 13, (i * 7) % 11));
            edges.push(((i * 3) % 11, i % 13));
        }
        let r = rel("R", ["a", "b"], &edges);
        let s = rel("S", ["b", "c"], &edges);
        let t = rel("T", ["a", "c"], &edges);
        let b = bag("tri", &["a", "b", "c"], vec![0, 1, 2]);
        let (serial, serial_report) = wcoj_materialize_reported(
            &b,
            &[r.clone(), s.clone(), t.clone()],
            &ExecContext::serial(),
        )
        .unwrap();
        assert_eq!(serial_report.attr_order, attrs(["a", "b", "c"]));
        assert!(serial_report.intersections > 0);
        for threads in [2usize, 4] {
            let ctx = ExecContext::with_threads(threads)
                .with_min_par_rows(1)
                .with_morsel_rows(3);
            let (par, par_report) =
                wcoj_materialize_reported(&b, &[r.clone(), s.clone(), t.clone()], &ctx).unwrap();
            let a: Vec<Vec<u64>> = serial.iter().map(|t| t.to_vec()).collect();
            let p: Vec<Vec<u64>> = par.iter().map(|t| t.to_vec()).collect();
            assert_eq!(a, p, "{threads} threads diverged");
            assert_eq!(
                par_report, serial_report,
                "intersection counts are deterministic"
            );
        }
    }

    #[test]
    fn empty_atom_yields_empty_bag() {
        let r = rel("R", ["x", "y"], &[(1, 2)]);
        let s = Relation::new("S", attrs(["y", "z"]));
        let b = bag("e", &["x", "z"], vec![0, 1]);
        let got = wcoj_materialize(&b, &[r, s], &ExecContext::serial()).unwrap();
        assert!(got.is_empty());
        assert_eq!(got.arity(), 2);
    }
}
