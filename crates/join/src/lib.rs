//! Join-processing substrate.
//!
//! The enumeration algorithms of the paper assume a handful of classical
//! building blocks which this crate provides:
//!
//! * [`bind_atoms`] — materialise the atoms of a query against a database,
//!   renaming relation columns to query variables (this is what makes
//!   self-joins work without duplicating base tables in the database),
//! * [`semi_join`] / [`full_reduce`] — the Yannakakis full reducer that
//!   removes all dangling tuples before preprocessing,
//! * [`hash_join`] / [`full_join`] / [`yannakakis_join`] — natural-join
//!   materialisation used by the baselines, the star-query heavy output and
//!   GHD bag materialisation,
//! * [`project_distinct`] — `SELECT DISTINCT` projection,
//! * [`materialize_bag`] — evaluation of one GHD bag (Theorem 3).
//!
//! Each kernel also has a morsel-driven parallel entry point in
//! [`parallel`] ([`par_hash_join`], [`par_semi_join`],
//! [`par_project_distinct`], [`par_dedup`]) plus context-aware variants of
//! the composite operators ([`materialize_bag_ctx`], [`materialize_bags`],
//! [`full_reduce_ctx`], [`reduce_then_prune_ctx`]). All of them take a
//! [`re_exec::ExecContext`] and are bit-for-bit identical to their serial
//! counterparts at any thread count.

pub mod bag;
pub mod bind;
pub mod error;
pub mod hashjoin;
pub mod parallel;
pub mod reducer;
pub mod wcoj;

pub use bag::{
    materialize_bag, materialize_bag_ctx, materialize_bag_kernel, materialize_bags,
    materialize_bags_reported, materialize_bags_with, BagBuildInfo, BagKernel,
};
pub use bind::{bind_atom, bind_atoms};
pub use error::JoinError;
pub use hashjoin::{full_join, hash_join, project_distinct, yannakakis_join};
pub use parallel::{
    par_dedup, par_hash_join, par_project_distinct, par_semi_join, par_sorted_index,
    PartitionedIndex,
};
pub use reducer::{
    full_reduce, full_reduce_ctx, full_reduce_relations, full_reduce_relations_ctx,
    reduce_then_prune, reduce_then_prune_ctx, semi_join, ReduceStats,
};
pub use wcoj::{wcoj_materialize, wcoj_materialize_reported, WcojReport};
