//! The JSON-lines wire protocol.
//!
//! One request per line, one response per line, UTF-8, no framing beyond
//! `\n`. Requests are objects with a `"cmd"` discriminator; responses carry
//! `"ok"` plus a `"type"` discriminator. The session commands implement the
//! resumable-cursor lifecycle:
//!
//! ```text
//! → {"cmd":"open","db":"dblp","sql":"SELECT DISTINCT ... LIMIT 100"}
//! ← {"ok":true,"type":"opened","session":7,"columns":["a1","a2"],
//!    "algorithm":"acyclic","plan_cached":false}
//! → {"cmd":"fetch","session":7,"k":10}
//! ← {"ok":true,"type":"page","rows":[[1,2],...],"exhausted":false}
//! → {"cmd":"close","session":7}
//! ← {"ok":true,"type":"closed","existed":true}
//! ```
//!
//! plus one-shot `query`, and the `stats` / `catalog` / `ping` endpoints.

use crate::json::{obj, Json};
use rankedenum_core::StatsSnapshot;
use re_storage::Tuple;

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open a resumable cursor on `sql` against catalog database `db`.
    Open {
        /// Catalog name of the database.
        db: String,
        /// The SQL statement.
        sql: String,
        /// Optional per-request deadline in milliseconds, measured from
        /// dispatch. Overrides the server's configured default; the open
        /// (including preprocessing) and every later fetch on the session
        /// abort cooperatively once it passes.
        deadline_millis: Option<u64>,
    },
    /// Fetch the next page of up to `k` answers from a session.
    Fetch {
        /// Session id returned by `Open`.
        session: u64,
        /// Maximum page size.
        k: u64,
    },
    /// Close a session, releasing its cursor.
    Close {
        /// Session id.
        session: u64,
    },
    /// Cancel a session cooperatively: a parked cursor is dropped at
    /// once; a cursor mid-fetch trips its cancel token and unwinds at the
    /// next morsel boundary. Later fetches report a typed `cancelled`
    /// error on the owning cursor.
    Cancel {
        /// Session id.
        session: u64,
    },
    /// One-shot execution (open + drain + close in one request).
    Query {
        /// Catalog name of the database.
        db: String,
        /// The SQL statement.
        sql: String,
    },
    /// Render the statement's plan as a stable text tree without running
    /// it (`analyze: false`), or execute it and annotate the plan with
    /// the actual per-operator counters (`analyze: true`). An `EXPLAIN`
    /// / `EXPLAIN ANALYZE` prefix written in the SQL itself takes
    /// precedence over the flag.
    Explain {
        /// Catalog name of the database.
        db: String,
        /// The SQL statement (with or without an `EXPLAIN` prefix).
        sql: String,
        /// Whether to execute the statement and report actuals.
        analyze: bool,
    },
    /// Server-wide metrics.
    Stats,
    /// Prometheus text-format exposition of counters, spans and latency
    /// histograms.
    Metrics,
    /// List the catalog.
    Catalog,
    /// Liveness check.
    Ping,
}

impl Request {
    /// Decode a request line.
    pub fn decode(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `cmd`".to_string())?;
        let str_field = |name: &str| -> Result<String, String> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{cmd}` needs a string `{name}`"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{cmd}` needs an unsigned integer `{name}`"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            json.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("`{cmd}` needs a boolean `{name}`"))
        };
        match cmd {
            "open" => Ok(Request::Open {
                db: str_field("db")?,
                sql: str_field("sql")?,
                // Optional — absent means "use the server default"; when
                // present it must be an unsigned integer.
                deadline_millis: match json.get("deadline_millis") {
                    None => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        "`open` needs an unsigned integer `deadline_millis`".to_string()
                    })?),
                },
            }),
            "fetch" => Ok(Request::Fetch {
                session: u64_field("session")?,
                k: u64_field("k")?,
            }),
            "close" => Ok(Request::Close {
                session: u64_field("session")?,
            }),
            "cancel" => Ok(Request::Cancel {
                session: u64_field("session")?,
            }),
            "query" => Ok(Request::Query {
                db: str_field("db")?,
                sql: str_field("sql")?,
            }),
            "explain" => Ok(Request::Explain {
                db: str_field("db")?,
                sql: str_field("sql")?,
                analyze: bool_field("analyze")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "catalog" => Ok(Request::Catalog),
            "ping" => Ok(Request::Ping),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    /// Encode the request as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::Open {
                db,
                sql,
                deadline_millis,
            } => {
                let mut fields = vec![
                    ("cmd", Json::Str("open".into())),
                    ("db", Json::Str(db.clone())),
                    ("sql", Json::Str(sql.clone())),
                ];
                if let Some(ms) = deadline_millis {
                    fields.push(("deadline_millis", Json::UInt(*ms)));
                }
                obj(fields)
            }
            Request::Fetch { session, k } => obj([
                ("cmd", Json::Str("fetch".into())),
                ("session", Json::UInt(*session)),
                ("k", Json::UInt(*k)),
            ]),
            Request::Close { session } => obj([
                ("cmd", Json::Str("close".into())),
                ("session", Json::UInt(*session)),
            ]),
            Request::Cancel { session } => obj([
                ("cmd", Json::Str("cancel".into())),
                ("session", Json::UInt(*session)),
            ]),
            Request::Query { db, sql } => obj([
                ("cmd", Json::Str("query".into())),
                ("db", Json::Str(db.clone())),
                ("sql", Json::Str(sql.clone())),
            ]),
            Request::Explain { db, sql, analyze } => obj([
                ("cmd", Json::Str("explain".into())),
                ("db", Json::Str(db.clone())),
                ("sql", Json::Str(sql.clone())),
                ("analyze", Json::Bool(*analyze)),
            ]),
            Request::Stats => obj([("cmd", Json::Str("stats".into()))]),
            Request::Metrics => obj([("cmd", Json::Str("metrics".into()))]),
            Request::Catalog => obj([("cmd", Json::Str("catalog".into()))]),
            Request::Ping => obj([("cmd", Json::Str("ping".into()))]),
        };
        json.to_string()
    }
}

/// Counters of one shared-pool worker slot, as carried by the `stats`
/// endpoint. The last entry of [`StatsReport::per_worker`] is the caller
/// slot (threads helping a batch to completion) — see the exec pool's
/// `WorkerStat`. Skew across entries is the signal the aggregate hides.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Tasks this worker executed to completion.
    pub tasks: u64,
    /// Tasks this worker took from another worker's deque.
    pub steals: u64,
    /// Microseconds this worker spent inside task bodies.
    pub busy_micros: u64,
}

/// Transport-level counters of the TCP front-end, as carried by the
/// `stats` endpoint. All zero while only the in-process client is used;
/// populated by whichever front-end (reactor or thread-per-connection)
/// serves the instance. The reactor's defining property is visible here:
/// `epoll_waits` and `wakeups` stand still while every connection is
/// idle — parked sessions cost no periodic polling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Times the reactor's poll wait returned (with at least one event
    /// or a wakeup; an idle reactor does not tick this).
    pub epoll_waits: u64,
    /// Wakeup-pipe signals the reactor consumed (worker completions and
    /// shutdown).
    pub wakeups: u64,
    /// Request bytes read off accepted connections.
    pub bytes_in: u64,
    /// Response bytes written to accepted connections.
    pub bytes_out: u64,
    /// Connections accepted since start.
    pub conns_accepted: u64,
    /// Connections that ended with a peer EOF/reset (as opposed to
    /// server shutdown).
    pub disconnects: u64,
}

/// Server-wide counters reported by the `stats` endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Sessions currently live.
    pub sessions_open: u64,
    /// Sessions opened since the server started.
    pub sessions_opened: u64,
    /// Sessions reaped by eviction (idle TTL + memory budget).
    pub sessions_evicted: u64,
    /// Sessions evicted specifically to enforce the memory budget (a
    /// subset of `sessions_evicted`).
    pub sessions_evicted_budget: u64,
    /// Sessions evicted by the idle TTL sweep (the remainder:
    /// `sessions_evicted - sessions_evicted_budget`).
    pub sessions_evicted_idle: u64,
    /// Configured parked-memory budget in bytes (`0` = unlimited).
    pub session_budget_bytes: u64,
    /// Frontier bytes currently retained by parked sessions.
    pub session_bytes_parked: u64,
    /// Enumerators built (preprocessing passes run).
    pub enumerators_built: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (statements planned from scratch).
    pub plan_cache_misses: u64,
    /// Plans currently cached.
    pub plan_cache_size: u64,
    /// Threads of the shared preprocessing pool (1 = serial).
    pub exec_pool_threads: u64,
    /// Shape of the most recent GHD plan chosen for a cyclic statement,
    /// annotated with the fallback reason when selection degraded to a
    /// single full-materialisation bag. Empty until a cyclic query runs.
    pub ghd_last_plan: String,
    /// Enumeration work aggregated across all workers and sessions,
    /// including the shared pool's parallel-preprocessing counters
    /// (`pool_tasks` / `pool_steals` / `pool_busy_micros`) and the
    /// robustness outcomes (`requests_shed` / `deadline_exceeded` /
    /// `cancelled` / `faults_injected`).
    pub enumeration: StatsSnapshot,
    /// Transport-level counters of the TCP front-end (zero when only the
    /// in-process client is used).
    pub transport: TransportCounters,
    /// Per-worker slices of the pool counters: one entry per pool worker
    /// plus a trailing caller slot; empty when preprocessing is serial.
    pub per_worker: Vec<WorkerCounters>,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A session was opened.
    Opened {
        /// The session id for subsequent `Fetch`/`Close` requests.
        session: u64,
        /// Output column names.
        columns: Vec<String>,
        /// Label of the enumeration strategy the plan selected.
        algorithm: String,
        /// Whether the plan came from the plan cache.
        plan_cached: bool,
    },
    /// A page of answers.
    Page {
        /// Up to `k` rows, in rank order.
        rows: Vec<Tuple>,
        /// Whether the enumeration is complete.
        exhausted: bool,
    },
    /// A session was closed.
    Closed {
        /// Whether the session existed.
        existed: bool,
    },
    /// A `Cancel` was processed.
    Cancelled {
        /// Whether the session existed (parked or mid-fetch) when the
        /// cancel arrived.
        existed: bool,
    },
    /// A one-shot result.
    Result {
        /// Output column names.
        columns: Vec<String>,
        /// All rows, in rank order (bounded by the statement's LIMIT).
        rows: Vec<Tuple>,
        /// Label of the enumeration strategy the plan selected.
        algorithm: String,
        /// Whether the plan came from the plan cache.
        plan_cached: bool,
    },
    /// The rendered plan text of an `Explain` request.
    Explained {
        /// The stable text tree (`EXPLAIN` header, plan structure, and —
        /// under `ANALYZE` — the execution section with actual counters).
        text: String,
    },
    /// Server-wide metrics.
    Stats(Box<StatsReport>),
    /// Prometheus text-format metrics exposition.
    Metrics {
        /// The exposition body (`# HELP`/`# TYPE` comments and samples).
        body: String,
    },
    /// The catalog listing.
    Catalog {
        /// Names of the registered databases, sorted.
        databases: Vec<String>,
    },
    /// Liveness answer.
    Pong,
    /// Any failure.
    Error {
        /// Human-readable reason.
        message: String,
        /// Machine-readable classification: `"overloaded"`,
        /// `"deadline_exceeded"`, `"cancelled"`, `"fault"`, or empty for
        /// an unclassified failure (bad SQL, unknown session, ...).
        code: String,
        /// For `"overloaded"` errors: a hint, in milliseconds, of how
        /// long the client should back off before retrying.
        retry_after_millis: Option<u64>,
    },
}

fn rows_to_json(rows: &[Tuple]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::Arr(row.iter().map(|&v| Json::UInt(v)).collect()))
            .collect(),
    )
}

fn rows_from_json(json: &Json) -> Result<Vec<Tuple>, String> {
    json.as_arr()
        .ok_or_else(|| "`rows` must be an array".to_string())?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| "row must be an array".to_string())?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| "row values must be unsigned".to_string())
                })
                .collect()
        })
        .collect()
}

fn workers_to_json(workers: &[WorkerCounters]) -> Json {
    Json::Arr(
        workers
            .iter()
            .map(|w| {
                Json::Arr(vec![
                    Json::UInt(w.tasks),
                    Json::UInt(w.steals),
                    Json::UInt(w.busy_micros),
                ])
            })
            .collect(),
    )
}

fn workers_from_json(json: &Json) -> Result<Vec<WorkerCounters>, String> {
    json.as_arr()
        .ok_or_else(|| "`per_worker` must be an array".to_string())?
        .iter()
        .map(|entry| {
            let triple = entry.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
                "per-worker entry must be [tasks, steals, busy_micros]".to_string()
            })?;
            let field = |i: usize| {
                triple[i]
                    .as_u64()
                    .ok_or_else(|| "per-worker counters must be unsigned".to_string())
            };
            Ok(WorkerCounters {
                tasks: field(0)?,
                steals: field(1)?,
                busy_micros: field(2)?,
            })
        })
        .collect()
}

fn strings_to_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from_json(json: &Json, what: &str) -> Result<Vec<String>, String> {
    json.as_arr()
        .ok_or_else(|| format!("`{what}` must be an array"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{what}` must contain strings"))
        })
        .collect()
}

impl Response {
    /// An unclassified error response (no code, no retry hint).
    pub fn error(message: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
            code: String::new(),
            retry_after_millis: None,
        }
    }

    /// An error response with a machine-readable `code`.
    pub fn error_coded(message: impl Into<String>, code: impl Into<String>) -> Response {
        Response::Error {
            message: message.into(),
            code: code.into(),
            retry_after_millis: None,
        }
    }

    /// The typed `overloaded` error: the request was shed by admission
    /// control, with a back-off hint.
    pub fn overloaded(message: impl Into<String>, retry_after_millis: u64) -> Response {
        Response::Error {
            message: message.into(),
            code: "overloaded".into(),
            retry_after_millis: Some(retry_after_millis),
        }
    }

    /// Encode the response as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Response::Opened {
                session,
                columns,
                algorithm,
                plan_cached,
            } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("opened".into())),
                ("session", Json::UInt(*session)),
                ("columns", strings_to_json(columns)),
                ("algorithm", Json::Str(algorithm.clone())),
                ("plan_cached", Json::Bool(*plan_cached)),
            ]),
            Response::Page { rows, exhausted } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("page".into())),
                ("rows", rows_to_json(rows)),
                ("exhausted", Json::Bool(*exhausted)),
            ]),
            Response::Closed { existed } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("closed".into())),
                ("existed", Json::Bool(*existed)),
            ]),
            Response::Cancelled { existed } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("cancelled".into())),
                ("existed", Json::Bool(*existed)),
            ]),
            Response::Result {
                columns,
                rows,
                algorithm,
                plan_cached,
            } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("result".into())),
                ("columns", strings_to_json(columns)),
                ("rows", rows_to_json(rows)),
                ("algorithm", Json::Str(algorithm.clone())),
                ("plan_cached", Json::Bool(*plan_cached)),
            ]),
            Response::Stats(report) => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("stats".into())),
                ("sessions_open", Json::UInt(report.sessions_open)),
                ("sessions_opened", Json::UInt(report.sessions_opened)),
                ("sessions_evicted", Json::UInt(report.sessions_evicted)),
                (
                    "sessions_evicted_budget",
                    Json::UInt(report.sessions_evicted_budget),
                ),
                (
                    "sessions_evicted_idle",
                    Json::UInt(report.sessions_evicted_idle),
                ),
                (
                    "session_budget_bytes",
                    Json::UInt(report.session_budget_bytes),
                ),
                (
                    "session_bytes_parked",
                    Json::UInt(report.session_bytes_parked),
                ),
                ("enumerators_built", Json::UInt(report.enumerators_built)),
                ("plan_cache_hits", Json::UInt(report.plan_cache_hits)),
                ("plan_cache_misses", Json::UInt(report.plan_cache_misses)),
                ("plan_cache_size", Json::UInt(report.plan_cache_size)),
                ("exec_pool_threads", Json::UInt(report.exec_pool_threads)),
                ("ghd_last_plan", Json::Str(report.ghd_last_plan.clone())),
                ("pq_pushes", Json::UInt(report.enumeration.pq_pushes)),
                ("pq_pops", Json::UInt(report.enumeration.pq_pops)),
                (
                    "cells_created",
                    Json::UInt(report.enumeration.cells_created),
                ),
                ("cells_reused", Json::UInt(report.enumeration.cells_reused)),
                ("answers", Json::UInt(report.enumeration.answers)),
                ("tuple_allocs", Json::UInt(report.enumeration.tuple_allocs)),
                (
                    "frontier_bytes",
                    Json::UInt(report.enumeration.frontier_bytes),
                ),
                (
                    "frontier_peak_bytes",
                    Json::UInt(report.enumeration.frontier_peak_bytes),
                ),
                ("ghd_bags", Json::UInt(report.enumeration.ghd_bags)),
                (
                    "ghd_estimated_rows",
                    Json::UInt(report.enumeration.ghd_estimated_rows),
                ),
                (
                    "ghd_fallbacks",
                    Json::UInt(report.enumeration.ghd_fallbacks),
                ),
                (
                    "reduce_passes",
                    Json::UInt(report.enumeration.reduce_passes),
                ),
                (
                    "reduce_input_rows",
                    Json::UInt(report.enumeration.reduce_input_rows),
                ),
                (
                    "reduce_output_rows",
                    Json::UInt(report.enumeration.reduce_output_rows),
                ),
                ("pool_tasks", Json::UInt(report.enumeration.pool_tasks)),
                ("pool_steals", Json::UInt(report.enumeration.pool_steals)),
                (
                    "pool_busy_micros",
                    Json::UInt(report.enumeration.pool_busy_micros),
                ),
                (
                    "requests_shed",
                    Json::UInt(report.enumeration.requests_shed),
                ),
                (
                    "deadline_exceeded",
                    Json::UInt(report.enumeration.deadline_exceeded),
                ),
                ("cancelled", Json::UInt(report.enumeration.cancelled)),
                (
                    "faults_injected",
                    Json::UInt(report.enumeration.faults_injected),
                ),
                (
                    "reactor_epoll_waits",
                    Json::UInt(report.transport.epoll_waits),
                ),
                ("reactor_wakeups", Json::UInt(report.transport.wakeups)),
                ("reactor_bytes_in", Json::UInt(report.transport.bytes_in)),
                ("reactor_bytes_out", Json::UInt(report.transport.bytes_out)),
                (
                    "reactor_conns_accepted",
                    Json::UInt(report.transport.conns_accepted),
                ),
                (
                    "reactor_disconnects",
                    Json::UInt(report.transport.disconnects),
                ),
                ("per_worker", workers_to_json(&report.per_worker)),
            ]),
            Response::Explained { text } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("explained".into())),
                ("text", Json::Str(text.clone())),
            ]),
            Response::Metrics { body } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("metrics".into())),
                ("body", Json::Str(body.clone())),
            ]),
            Response::Catalog { databases } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("catalog".into())),
                ("databases", strings_to_json(databases)),
            ]),
            Response::Pong => obj([("ok", Json::Bool(true)), ("type", Json::Str("pong".into()))]),
            Response::Error {
                message,
                code,
                retry_after_millis,
            } => {
                let mut fields = vec![
                    ("ok", Json::Bool(false)),
                    ("type", Json::Str("error".into())),
                    ("error", Json::Str(message.clone())),
                ];
                if !code.is_empty() {
                    fields.push(("code", Json::Str(code.clone())));
                }
                if let Some(ms) = retry_after_millis {
                    fields.push(("retry_after_millis", Json::UInt(*ms)));
                }
                obj(fields)
            }
        };
        json.to_string()
    }

    /// Decode a response line.
    pub fn decode(line: &str) -> Result<Response, String> {
        let json = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let kind = json
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `type`".to_string())?;
        let u64_field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{kind}` response needs `{name}`"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            json.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("`{kind}` response needs `{name}`"))
        };
        let str_field = |name: &str| -> Result<String, String> {
            json.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{kind}` response needs `{name}`"))
        };
        match kind {
            "opened" => Ok(Response::Opened {
                session: u64_field("session")?,
                columns: strings_from_json(
                    json.get("columns").ok_or("missing `columns`")?,
                    "columns",
                )?,
                algorithm: str_field("algorithm")?,
                plan_cached: bool_field("plan_cached")?,
            }),
            "page" => Ok(Response::Page {
                rows: rows_from_json(json.get("rows").ok_or("missing `rows`")?)?,
                exhausted: bool_field("exhausted")?,
            }),
            "closed" => Ok(Response::Closed {
                existed: bool_field("existed")?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                existed: bool_field("existed")?,
            }),
            "result" => Ok(Response::Result {
                columns: strings_from_json(
                    json.get("columns").ok_or("missing `columns`")?,
                    "columns",
                )?,
                rows: rows_from_json(json.get("rows").ok_or("missing `rows`")?)?,
                algorithm: str_field("algorithm")?,
                plan_cached: bool_field("plan_cached")?,
            }),
            "stats" => Ok(Response::Stats(Box::new(StatsReport {
                sessions_open: u64_field("sessions_open")?,
                sessions_opened: u64_field("sessions_opened")?,
                sessions_evicted: u64_field("sessions_evicted")?,
                sessions_evicted_budget: u64_field("sessions_evicted_budget")?,
                sessions_evicted_idle: u64_field("sessions_evicted_idle")?,
                session_budget_bytes: u64_field("session_budget_bytes")?,
                session_bytes_parked: u64_field("session_bytes_parked")?,
                enumerators_built: u64_field("enumerators_built")?,
                plan_cache_hits: u64_field("plan_cache_hits")?,
                plan_cache_misses: u64_field("plan_cache_misses")?,
                plan_cache_size: u64_field("plan_cache_size")?,
                exec_pool_threads: u64_field("exec_pool_threads")?,
                ghd_last_plan: str_field("ghd_last_plan")?,
                enumeration: StatsSnapshot {
                    pq_pushes: u64_field("pq_pushes")?,
                    pq_pops: u64_field("pq_pops")?,
                    cells_created: u64_field("cells_created")?,
                    cells_reused: u64_field("cells_reused")?,
                    answers: u64_field("answers")?,
                    tuple_allocs: u64_field("tuple_allocs")?,
                    frontier_bytes: u64_field("frontier_bytes")?,
                    frontier_peak_bytes: u64_field("frontier_peak_bytes")?,
                    ghd_bags: u64_field("ghd_bags")?,
                    ghd_estimated_rows: u64_field("ghd_estimated_rows")?,
                    ghd_fallbacks: u64_field("ghd_fallbacks")?,
                    reduce_passes: u64_field("reduce_passes")?,
                    reduce_input_rows: u64_field("reduce_input_rows")?,
                    reduce_output_rows: u64_field("reduce_output_rows")?,
                    pool_tasks: u64_field("pool_tasks")?,
                    pool_steals: u64_field("pool_steals")?,
                    pool_busy_micros: u64_field("pool_busy_micros")?,
                    requests_shed: u64_field("requests_shed")?,
                    deadline_exceeded: u64_field("deadline_exceeded")?,
                    cancelled: u64_field("cancelled")?,
                    faults_injected: u64_field("faults_injected")?,
                },
                // Absent on pre-reactor stats lines; default to zero so
                // old captures keep decoding.
                transport: {
                    let opt = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
                    TransportCounters {
                        epoll_waits: opt("reactor_epoll_waits"),
                        wakeups: opt("reactor_wakeups"),
                        bytes_in: opt("reactor_bytes_in"),
                        bytes_out: opt("reactor_bytes_out"),
                        conns_accepted: opt("reactor_conns_accepted"),
                        disconnects: opt("reactor_disconnects"),
                    }
                },
                per_worker: workers_from_json(
                    json.get("per_worker").ok_or("missing `per_worker`")?,
                )?,
            }))),
            "explained" => Ok(Response::Explained {
                text: str_field("text")?,
            }),
            "metrics" => Ok(Response::Metrics {
                body: str_field("body")?,
            }),
            "catalog" => Ok(Response::Catalog {
                databases: strings_from_json(
                    json.get("databases").ok_or("missing `databases`")?,
                    "databases",
                )?,
            }),
            "pong" => Ok(Response::Pong),
            "error" => Ok(Response::Error {
                message: str_field("error")?,
                code: json
                    .get("code")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                retry_after_millis: json.get("retry_after_millis").and_then(Json::as_u64),
            }),
            other => Err(format!("unknown response type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Open {
                db: "dblp".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a LIMIT 5".into(),
                deadline_millis: None,
            },
            Request::Open {
                db: "dblp".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a LIMIT 5".into(),
                deadline_millis: Some(1500),
            },
            Request::Fetch { session: 7, k: 10 },
            Request::Close { session: 7 },
            Request::Cancel { session: 9 },
            Request::Query {
                db: "d".into(),
                sql: "SELECT DISTINCT a FROM T".into(),
            },
            Request::Explain {
                db: "d".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a".into(),
                analyze: true,
            },
            Request::Stats,
            Request::Metrics,
            Request::Catalog,
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Opened {
                session: 3,
                columns: vec!["a1".into(), "a2".into()],
                algorithm: "acyclic".into(),
                plan_cached: true,
            },
            Response::Page {
                rows: vec![vec![1, 2], vec![3, 4]],
                exhausted: false,
            },
            Response::Closed { existed: true },
            Response::Cancelled { existed: true },
            Response::Cancelled { existed: false },
            Response::Result {
                columns: vec!["x".into()],
                rows: vec![vec![9]],
                algorithm: "union-merge".into(),
                plan_cached: false,
            },
            Response::Stats(Box::new(StatsReport {
                sessions_open: 1,
                sessions_opened: 2,
                sessions_evicted: 3,
                sessions_evicted_budget: 17,
                sessions_evicted_idle: 26,
                session_budget_bytes: 18,
                session_bytes_parked: 19,
                enumerators_built: 4,
                plan_cache_hits: 5,
                plan_cache_misses: 6,
                plan_cache_size: 7,
                exec_pool_threads: 8,
                ghd_last_plan: "cycle-split(0,3) over 6 atoms".into(),
                enumeration: StatsSnapshot {
                    pq_pushes: 9,
                    pq_pops: 10,
                    cells_created: 11,
                    cells_reused: 16,
                    answers: 12,
                    tuple_allocs: 20,
                    frontier_bytes: 21,
                    frontier_peak_bytes: 22,
                    ghd_bags: 23,
                    ghd_estimated_rows: 24,
                    ghd_fallbacks: 25,
                    reduce_passes: 27,
                    reduce_input_rows: 28,
                    reduce_output_rows: 29,
                    pool_tasks: 13,
                    pool_steals: 14,
                    pool_busy_micros: 15,
                    requests_shed: 35,
                    deadline_exceeded: 36,
                    cancelled: 37,
                    faults_injected: 38,
                },
                transport: TransportCounters {
                    epoll_waits: 39,
                    wakeups: 40,
                    bytes_in: 41,
                    bytes_out: 42,
                    conns_accepted: 43,
                    disconnects: 44,
                },
                per_worker: vec![
                    WorkerCounters {
                        tasks: 30,
                        steals: 31,
                        busy_micros: 32,
                    },
                    WorkerCounters {
                        tasks: 33,
                        steals: 0,
                        busy_micros: 34,
                    },
                ],
            })),
            Response::Explained {
                text: "EXPLAIN\nstatement: join-project (2 atoms)\n".into(),
            },
            Response::Metrics {
                body: "# TYPE re_sessions_open gauge\nre_sessions_open 1\n".into(),
            },
            Response::Catalog {
                databases: vec!["a".into(), "b".into()],
            },
            Response::Pong,
            Response::Error {
                message: "boom".into(),
                code: String::new(),
                retry_after_millis: None,
            },
            Response::Error {
                message: "too busy".into(),
                code: "overloaded".into(),
                retry_after_millis: Some(250),
            },
            Response::Error {
                message: "query deadline exceeded".into(),
                code: "deadline_exceeded".into(),
                retry_after_millis: None,
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn error_code_and_retry_hint_are_optional_on_the_wire() {
        // Old-style error lines (no `code`, no `retry_after_millis`)
        // still decode — the fields default to unclassified.
        let decoded =
            Response::decode("{\"ok\":false,\"type\":\"error\",\"error\":\"boom\"}").unwrap();
        assert_eq!(decoded, Response::error("boom"));
        // And the unclassified encoding omits the optional fields.
        assert!(!Response::error("boom").encode().contains("code"));
        assert!(
            Response::overloaded("busy", 40)
                .encode()
                .contains("\"retry_after_millis\":40"),
            "the back-off hint rides on overloaded errors"
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{\"cmd\":\"nope\"}").is_err());
        assert!(Request::decode("{\"cmd\":\"fetch\",\"session\":1}").is_err());
        assert!(Request::decode("{\"cmd\":\"open\",\"db\":\"d\"}").is_err());
        assert!(Request::decode("{\"cmd\":\"cancel\"}").is_err());
        // `deadline_millis`, when present, must be an unsigned integer.
        assert!(Request::decode(
            "{\"cmd\":\"open\",\"db\":\"d\",\"sql\":\"s\",\"deadline_millis\":\"soon\"}"
        )
        .is_err());
        // `explain` needs a boolean `analyze`, not a number.
        assert!(Request::decode("{\"cmd\":\"explain\",\"db\":\"d\",\"sql\":\"s\"}").is_err());
        assert!(
            Request::decode("{\"cmd\":\"explain\",\"db\":\"d\",\"sql\":\"s\",\"analyze\":1}")
                .is_err()
        );
    }
}
