//! Cooperative cancellation: a shared token checked at morsel boundaries.
//!
//! Ranked enumeration is an *anytime* algorithm — the whole point is that
//! the caller can stop whenever the answers so far are enough. A
//! [`CancelToken`] turns that into a server-side contract: it carries an
//! optional **deadline** (absolute instant, covering preprocessing *and*
//! every later fetch on the cursor) and an **external cancel flag** (set by
//! a `CANCEL` request racing the work from another thread). Kernels poll
//! [`CancelToken::check`] at morsel/pass/bag boundaries, so an abort takes
//! effect within one unit of work and unwinds through the ordinary `Result`
//! error path — no thread is ever killed, no lock is poisoned, partial
//! state is dropped by plain RAII.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The token's deadline passed.
    Deadline,
    /// [`CancelToken::cancel`] was called (e.g. a protocol `CANCEL`).
    Explicit,
}

impl CancelKind {
    /// Stable machine-readable label (the wire-protocol error code).
    pub fn code(self) -> &'static str {
        match self {
            CancelKind::Deadline => "deadline_exceeded",
            CancelKind::Explicit => "cancelled",
        }
    }
}

impl std::fmt::Display for CancelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelKind::Deadline => write!(f, "query deadline exceeded"),
            CancelKind::Explicit => write!(f, "cancelled by client request"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheaply clonable cancellation handle (all clones share one state).
///
/// ```
/// use re_exec::{CancelKind, CancelToken};
///
/// let token = CancelToken::unbounded();
/// assert_eq!(token.check(), Ok(()));
/// token.cancel();
/// assert_eq!(token.check(), Err(CancelKind::Explicit));
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline that only trips on [`CancelToken::cancel`].
    pub fn unbounded() -> Self {
        CancelToken::new(None)
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken::new(Some(timeout))
    }

    /// A token with an optional deadline `timeout` from now.
    pub fn new(timeout: Option<Duration>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.map(|t| Instant::now() + t),
            }),
        }
    }

    /// Trip the external cancel flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Poll the token: `Ok` to keep working, `Err(kind)` to unwind. An
    /// explicit cancel takes precedence over a simultaneously-passed
    /// deadline (the client asked first).
    pub fn check(&self) -> Result<(), CancelKind> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(CancelKind::Explicit);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(CancelKind::Deadline),
            _ => Ok(()),
        }
    }

    /// Whether the token has tripped (either way).
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_trips_on_its_own() {
        let t = CancelToken::unbounded();
        assert_eq!(t.check(), Ok(()));
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::unbounded();
        let clone = t.clone();
        clone.cancel();
        assert_eq!(t.check(), Err(CancelKind::Explicit));
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_trips_after_the_timeout() {
        let t = CancelToken::with_deadline(Duration::from_millis(20));
        assert_eq!(t.check(), Ok(()));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(t.check(), Err(CancelKind::Deadline));
    }

    #[test]
    fn explicit_cancel_wins_over_a_passed_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        t.cancel();
        assert_eq!(t.check(), Err(CancelKind::Explicit));
    }

    #[test]
    fn kinds_have_stable_codes() {
        assert_eq!(CancelKind::Deadline.code(), "deadline_exceeded");
        assert_eq!(CancelKind::Explicit.code(), "cancelled");
    }
}
