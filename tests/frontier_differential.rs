//! Differential suite for the arena frontier kernel.
//!
//! Hard contract of the PR that introduced `re_core::frontier`: the
//! arena-backed enumerators ([`AcyclicEnumerator`], [`CyclicEnumerator`]
//! through its bag-wrapped acyclic core, [`StarEnumerator`],
//! [`UnionEnumerator`]) emit answer sequences **byte-identical** to the
//! pre-refactor owned-tuple engine, retained as [`ReferenceAcyclic`]. This
//! suite pits the engines against each other on every `re_workloads` query
//! and on proptest-random acyclic and cyclic instances — serial, under a
//! pooled context, and under the env-sized context `ci.sh` forces to
//! `RE_EXEC_THREADS=1` and `=4`.
//!
//! It also enforces the kernel's representation guarantees: steady-state
//! `next()` performs zero `Tuple` allocations beyond the emitted answer
//! ([`EnumStats::tuple_allocs`] stays 0 — while the reference engine,
//! which allocates per cell and per queue entry, must trip the counter),
//! and the accounted frontier footprint of the arena engine undercuts the
//! reference engine's walked footprint.

use proptest::prelude::*;
use rankedenum::prelude::*;
use rankedenum::workloads::membership::WeightScheme;
use rankedenum::workloads::{DblpWorkload, ImdbWorkload, LdbcWorkload};

/// The env-sized context `ci.sh` pins to RE_EXEC_THREADS=1 and =4, with
/// tiny morsels so small instances still split.
fn env_ctx() -> ExecContext {
    ExecContext::from_env()
        .with_min_par_rows(1)
        .with_morsel_rows(7)
}

/// Drain up to `k` answers and return them with the final stats.
fn drain<E: Iterator<Item = Tuple>>(mut e: E, k: usize) -> Vec<Tuple> {
    e.by_ref().take(k).collect()
}

#[test]
fn acyclic_workloads_match_the_reference_engine() {
    let dblp = DblpWorkload::generate(700, 11, WeightScheme::Random);
    let imdb = ImdbWorkload::generate(500, 12, WeightScheme::LogDegree);
    let specs = [
        (dblp.two_hop(), dblp.db()),
        (dblp.three_hop(), dblp.db()),
        (dblp.four_hop(), dblp.db()),
        (dblp.three_star(), dblp.db()),
        (imdb.two_hop(), imdb.db()),
        (imdb.three_star(), imdb.db()),
    ];
    for (spec, db) in specs {
        let mut reference = ReferenceAcyclic::new(&spec.query, db, spec.sum_ranking()).unwrap();
        let expected: Vec<Tuple> = reference.by_ref().take(500).collect();
        assert!(
            reference.stats().tuple_allocs > 0,
            "{}: the reference engine must trip the tuple-alloc tripwire",
            spec.name
        );

        let mut arena = AcyclicEnumerator::new(&spec.query, db, spec.sum_ranking()).unwrap();
        let got: Vec<Tuple> = arena.by_ref().take(500).collect();
        assert_eq!(got, expected, "{}: arena engine diverged", spec.name);
        assert_eq!(
            arena.stats().tuple_allocs,
            0,
            "{}: arena next() allocated a tuple beyond the answer",
            spec.name
        );
        assert!(
            arena.frontier_bytes() < reference.frontier_bytes(),
            "{}: arena frontier ({}) must undercut the owned-tuple frontier ({})",
            spec.name,
            arena.frontier_bytes(),
            reference.frontier_bytes()
        );

        let via_env: Vec<Tuple> = drain(
            AcyclicEnumerator::new_ctx(&spec.query, db, spec.sum_ranking(), &env_ctx()).unwrap(),
            500,
        );
        assert_eq!(via_env, expected, "{}: env-ctx build diverged", spec.name);
    }
}

#[test]
fn cyclic_workloads_match_the_reference_engine() {
    let dblp = DblpWorkload::generate(350, 21, WeightScheme::Random);
    for k in [2usize, 3] {
        let (spec, plan) = dblp.cycle(k);
        let expected: Vec<Tuple> = drain(
            ReferenceAcyclic::for_cyclic(&spec.query, dblp.db(), spec.sum_ranking(), &plan)
                .unwrap(),
            300,
        );
        let mut arena =
            CyclicEnumerator::new(&spec.query, dblp.db(), spec.sum_ranking(), &plan).unwrap();
        let got: Vec<Tuple> = arena.by_ref().take(300).collect();
        assert_eq!(got, expected, "{}: cyclic arena diverged", spec.name);
        assert_eq!(arena.stats().tuple_allocs, 0, "{}: tuple alloc", spec.name);
        assert!(arena.stats().frontier_bytes > 0);

        let via_env: Vec<Tuple> = drain(
            CyclicEnumerator::new_ctx(
                &spec.query,
                dblp.db(),
                spec.sum_ranking(),
                &plan,
                &env_ctx(),
            )
            .unwrap(),
            300,
        );
        assert_eq!(via_env, expected, "{}: env-ctx cyclic diverged", spec.name);
    }
}

#[test]
fn union_workloads_match_reference_branch_merges() {
    // The union engine merges whatever sorted branch streams it is given;
    // feeding it reference-engine branches reproduces the pre-refactor
    // output, which the arena-backed build must equal exactly.
    let ldbc = LdbcWorkload::generate(2, 31);
    for spec in [ldbc.q3(), ldbc.q10(), ldbc.q11()] {
        let ranking = spec.sum_ranking();
        let branches: Vec<Box<dyn Iterator<Item = Tuple> + Send>> = spec
            .query
            .branches()
            .iter()
            .map(|q| -> Box<dyn Iterator<Item = Tuple> + Send> {
                if Hypergraph::of_query(q).is_acyclic() {
                    Box::new(ReferenceAcyclic::new(q, ldbc.db(), ranking.clone()).unwrap())
                } else {
                    let plan = GhdPlan::for_cycle(q).unwrap_or_else(|_| GhdPlan::single_bag(q));
                    Box::new(
                        ReferenceAcyclic::for_cyclic(q, ldbc.db(), ranking.clone(), &plan).unwrap(),
                    )
                }
            })
            .collect();
        let expected: Vec<Tuple> = drain(
            UnionEnumerator::from_streams(
                spec.query.projection().to_vec(),
                ranking.clone(),
                branches,
            ),
            400,
        );
        let arena = UnionEnumerator::new(&spec.query, ldbc.db(), ranking.clone()).unwrap();
        let got: Vec<Tuple> = drain(arena, 400);
        assert_eq!(got, expected, "{}: union arena diverged", spec.name);
    }
}

#[test]
fn star_enumerator_accounts_branch_frontiers() {
    let dblp = DblpWorkload::generate(300, 51, WeightScheme::Random);
    let spec = dblp.three_star();
    let reference: Vec<Tuple> = drain(
        ReferenceAcyclic::new(&spec.query, dblp.db(), spec.sum_ranking()).unwrap(),
        300,
    );
    for delta in [1usize, 8, 1000] {
        let mut star =
            StarEnumerator::new(&spec.query, dblp.db(), spec.sum_ranking(), delta).unwrap();
        let got: Vec<Tuple> = star.by_ref().take(300).collect();
        assert_eq!(got, reference, "δ = {delta}: star diverged");
        let snapshot = star.stats_snapshot();
        assert!(
            snapshot.frontier_bytes > 0,
            "δ = {delta}: the tradeoff's memory side must be visible"
        );
    }
}

/// Build a relation from generated edges (shifted away from 0 and
/// de-duplicated, like the instances the reducers see).
fn edge_relation(name: &str, cols: [&str; 2], edges: &[(u64, u64)]) -> Relation {
    let mut rel = Relation::new(name, attrs(cols));
    let mut seen = std::collections::HashSet::new();
    for &(a, b) in edges {
        if seen.insert((a, b)) {
            rel.push(&[a + 1, b + 1]).unwrap();
        }
    }
    rel
}

fn edges(max_node: u64, max_len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..max_node, 0..max_node), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random acyclic instances: the arena engine equals the reference
    /// engine under SUM — serial and under the env-sized context — and
    /// keeps the zero-allocation contract.
    #[test]
    fn arena_matches_reference_on_random_acyclic_instances(
        r in edges(6, 60),
        s in edges(6, 60),
        t in edges(6, 60),
    ) {
        let mut db = Database::new();
        db.add_relation(edge_relation("R", ["a", "b"], &r)).unwrap();
        db.add_relation(edge_relation("S", ["b", "c"], &s)).unwrap();
        db.add_relation(edge_relation("T", ["c", "d"], &t)).unwrap();
        let query = QueryBuilder::new()
            .atom("R", "R", ["a", "b"])
            .atom("S", "S", ["b", "c"])
            .atom("T", "T", ["c", "d"])
            .project(["a", "c", "d"])
            .build()
            .unwrap();
        let expected: Vec<Tuple> = ReferenceAcyclic::new(&query, &db, SumRanking::value_sum())
            .unwrap()
            .collect();
        let mut arena = AcyclicEnumerator::new(&query, &db, SumRanking::value_sum()).unwrap();
        let got: Vec<Tuple> = arena.by_ref().collect();
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(arena.stats().tuple_allocs, 0);
        let via_env: Vec<Tuple> =
            AcyclicEnumerator::new_ctx(&query, &db, SumRanking::value_sum(), &env_ctx())
                .unwrap()
                .collect();
        prop_assert_eq!(&via_env, &expected);
    }

    /// Random 4-cycle instances: the GHD-backed cyclic engine equals the
    /// reference engine run on the same plan's materialised bags.
    #[test]
    fn arena_matches_reference_on_random_cyclic_instances(
        e in edges(7, 70),
    ) {
        let mut db = Database::new();
        db.add_relation(edge_relation("E", ["s", "t"], &e)).unwrap();
        let query = QueryBuilder::new()
            .atom("E1", "E", ["a1", "a2"])
            .atom("E2", "E", ["a2", "a3"])
            .atom("E3", "E", ["a3", "a4"])
            .atom("E4", "E", ["a4", "a1"])
            .project(["a1", "a3"])
            .build()
            .unwrap();
        let plan = GhdPlan::for_cycle(&query).unwrap();
        let expected: Vec<Tuple> =
            ReferenceAcyclic::for_cyclic(&query, &db, SumRanking::value_sum(), &plan)
                .unwrap()
                .collect();
        let got: Vec<Tuple> =
            CyclicEnumerator::new(&query, &db, SumRanking::value_sum(), &plan)
                .unwrap()
                .collect();
        prop_assert_eq!(&got, &expected);
        let via_env: Vec<Tuple> =
            CyclicEnumerator::new_ctx(&query, &db, SumRanking::value_sum(), &plan, &env_ctx())
                .unwrap()
                .collect();
        prop_assert_eq!(&via_env, &expected);
    }
}
