//! The length-prefixed binary protocol and per-connection framing.
//!
//! JSON-lines is the readable default; this module adds a binary option
//! carrying the *same* [`Request`]/[`Response`] model with u64-exact
//! integers (values travel as little-endian words, never through decimal
//! text) and cheap, allocation-light parsing.
//!
//! ## Negotiation
//!
//! The protocol is chosen per connection by its very first bytes. A
//! binary client opens with the 4-byte magic `"REB1"`; anything else —
//! in particular `{`, the first byte of every JSON-lines request — keeps
//! the connection on JSON-lines. A prefix of the magic with no newline
//! yet is ambiguous ("RE" could become "REB1"), so negotiation reports
//! [`Negotiation::NeedMore`] until either the magic completes, a byte
//! diverges, or a newline proves the line was meant for the JSON parser.
//!
//! ## Framing
//!
//! After the magic, both directions speak frames: a little-endian `u32`
//! payload length followed by the payload (one encoded request or
//! response). Lengths above [`MAX_FRAME_LEN`] are rejected before any
//! allocation — a corrupt or hostile length prefix cannot balloon
//! memory, and since framing cannot resync after a bad prefix the
//! connection is torn down with a final error frame.
//!
//! Payload encoding is a `u8` tag plus fields in declaration order:
//! integers little-endian, strings and rows length-prefixed with `u32`
//! counts. Encode/decode are exact inverses for every variant (see the
//! round-trip tests here and the property fuzz in
//! `tests/transport_equivalence.rs`).

use crate::protocol::{Request, Response, StatsReport, TransportCounters, WorkerCounters};
use rankedenum_core::StatsSnapshot;
use re_storage::Tuple;

/// First bytes of a binary-protocol connection.
pub const BINARY_MAGIC: [u8; 4] = *b"REB1";

/// Hard cap on one frame's payload (64 MiB): big enough for any page or
/// metrics body the server produces, small enough that a corrupt length
/// prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// The wire protocol one connection speaks, fixed at negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireProtocol {
    /// One JSON object per `\n`-terminated line.
    Json,
    /// Length-prefixed binary frames (after the `"REB1"` magic).
    Binary,
}

/// Outcome of inspecting a connection's first bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Negotiation {
    /// Too few bytes to decide (a strict prefix of the magic).
    NeedMore,
    /// JSON-lines — the bytes are not the binary magic.
    Json,
    /// The binary magic arrived; the caller must consume its 4 bytes.
    Binary,
}

/// Decide the protocol from the first buffered bytes.
pub fn negotiate(pending: &[u8]) -> Negotiation {
    if pending.is_empty() {
        return Negotiation::NeedMore;
    }
    let probe = pending.len().min(BINARY_MAGIC.len());
    if pending[..probe] != BINARY_MAGIC[..probe] {
        return Negotiation::Json;
    }
    if pending.len() >= BINARY_MAGIC.len() {
        return Negotiation::Binary;
    }
    // A strict prefix of the magic. A newline proves it was a (malformed)
    // JSON line after all — don't stall a line-oriented client forever.
    if pending.contains(&b'\n') {
        Negotiation::Json
    } else {
        Negotiation::NeedMore
    }
}

/// Split one complete binary frame's payload off the front of `pending`.
///
/// `Ok(None)` means more bytes are needed; `Err` is unrecoverable (the
/// length prefix exceeded [`MAX_FRAME_LEN`], after which no frame
/// boundary can be trusted).
pub fn split_frame(pending: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if pending.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        ));
    }
    if pending.len() < 4 + len {
        return Ok(None);
    }
    let payload = pending[4..4 + len].to_vec();
    pending.drain(..4 + len);
    Ok(Some(payload))
}

/// Append `payload` to `out` as one length-prefixed frame.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------
// Payload encoding primitives.
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_strings(out: &mut Vec<u8>, items: &[String]) {
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Tuple]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.len() as u32);
        for &v in row.iter() {
            put_u64(out, v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("truncated payload".to_string());
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid boolean byte {other}")),
        }
    }

    /// A `u32` element count, sanity-bounded by the bytes actually
    /// present (each element needs at least `min_elem_bytes`), so a
    /// corrupt count cannot pre-allocate gigabytes.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        let available = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > available {
            return Err(format!("element count {n} exceeds the payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not valid UTF-8".to_string())
    }

    fn strings(&mut self) -> Result<Vec<String>, String> {
        let n = self.count(4)?;
        (0..n).map(|_| self.str()).collect()
    }

    fn rows(&mut self) -> Result<Vec<Tuple>, String> {
        let n = self.count(4)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let width = self.count(8)?;
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(self.u64()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Request payloads.
// ---------------------------------------------------------------------

const REQ_OPEN: u8 = 1;
const REQ_FETCH: u8 = 2;
const REQ_CLOSE: u8 = 3;
const REQ_CANCEL: u8 = 4;
const REQ_QUERY: u8 = 5;
const REQ_EXPLAIN: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_METRICS: u8 = 8;
const REQ_CATALOG: u8 = 9;
const REQ_PING: u8 = 10;

/// Encode one request as a binary payload (no frame prefix).
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::Open {
            db,
            sql,
            deadline_millis,
        } => {
            out.push(REQ_OPEN);
            put_str(&mut out, db);
            put_str(&mut out, sql);
            put_bool(&mut out, deadline_millis.is_some());
            put_u64(&mut out, deadline_millis.unwrap_or(0));
        }
        Request::Fetch { session, k } => {
            out.push(REQ_FETCH);
            put_u64(&mut out, *session);
            put_u64(&mut out, *k);
        }
        Request::Close { session } => {
            out.push(REQ_CLOSE);
            put_u64(&mut out, *session);
        }
        Request::Cancel { session } => {
            out.push(REQ_CANCEL);
            put_u64(&mut out, *session);
        }
        Request::Query { db, sql } => {
            out.push(REQ_QUERY);
            put_str(&mut out, db);
            put_str(&mut out, sql);
        }
        Request::Explain { db, sql, analyze } => {
            out.push(REQ_EXPLAIN);
            put_str(&mut out, db);
            put_str(&mut out, sql);
            put_bool(&mut out, *analyze);
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Metrics => out.push(REQ_METRICS),
        Request::Catalog => out.push(REQ_CATALOG),
        Request::Ping => out.push(REQ_PING),
    }
    out
}

/// Decode one request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut r = Reader::new(payload);
    let request = match r.u8()? {
        REQ_OPEN => {
            let db = r.str()?;
            let sql = r.str()?;
            let has_deadline = r.bool()?;
            let deadline = r.u64()?;
            Request::Open {
                db,
                sql,
                deadline_millis: has_deadline.then_some(deadline),
            }
        }
        REQ_FETCH => Request::Fetch {
            session: r.u64()?,
            k: r.u64()?,
        },
        REQ_CLOSE => Request::Close { session: r.u64()? },
        REQ_CANCEL => Request::Cancel { session: r.u64()? },
        REQ_QUERY => Request::Query {
            db: r.str()?,
            sql: r.str()?,
        },
        REQ_EXPLAIN => Request::Explain {
            db: r.str()?,
            sql: r.str()?,
            analyze: r.bool()?,
        },
        REQ_STATS => Request::Stats,
        REQ_METRICS => Request::Metrics,
        REQ_CATALOG => Request::Catalog,
        REQ_PING => Request::Ping,
        other => return Err(format!("unknown request tag {other}")),
    };
    r.finish()?;
    Ok(request)
}

// ---------------------------------------------------------------------
// Response payloads.
// ---------------------------------------------------------------------

const RESP_OPENED: u8 = 1;
const RESP_PAGE: u8 = 2;
const RESP_CLOSED: u8 = 3;
const RESP_CANCELLED: u8 = 4;
const RESP_RESULT: u8 = 5;
const RESP_EXPLAINED: u8 = 6;
const RESP_STATS: u8 = 7;
const RESP_METRICS: u8 = 8;
const RESP_CATALOG: u8 = 9;
const RESP_PONG: u8 = 10;
const RESP_ERROR: u8 = 11;

fn put_stats(out: &mut Vec<u8>, report: &StatsReport) {
    put_u64(out, report.sessions_open);
    put_u64(out, report.sessions_opened);
    put_u64(out, report.sessions_evicted);
    put_u64(out, report.sessions_evicted_budget);
    put_u64(out, report.sessions_evicted_idle);
    put_u64(out, report.session_budget_bytes);
    put_u64(out, report.session_bytes_parked);
    put_u64(out, report.enumerators_built);
    put_u64(out, report.plan_cache_hits);
    put_u64(out, report.plan_cache_misses);
    put_u64(out, report.plan_cache_size);
    put_u64(out, report.exec_pool_threads);
    put_str(out, &report.ghd_last_plan);
    let e = &report.enumeration;
    for v in [
        e.pq_pushes,
        e.pq_pops,
        e.cells_created,
        e.cells_reused,
        e.answers,
        e.tuple_allocs,
        e.frontier_bytes,
        e.frontier_peak_bytes,
        e.ghd_bags,
        e.ghd_estimated_rows,
        e.ghd_fallbacks,
        e.reduce_passes,
        e.reduce_input_rows,
        e.reduce_output_rows,
        e.pool_tasks,
        e.pool_steals,
        e.pool_busy_micros,
        e.requests_shed,
        e.deadline_exceeded,
        e.cancelled,
        e.faults_injected,
    ] {
        put_u64(out, v);
    }
    let t = &report.transport;
    for v in [
        t.epoll_waits,
        t.wakeups,
        t.bytes_in,
        t.bytes_out,
        t.conns_accepted,
        t.disconnects,
    ] {
        put_u64(out, v);
    }
    put_u32(out, report.per_worker.len() as u32);
    for w in &report.per_worker {
        put_u64(out, w.tasks);
        put_u64(out, w.steals);
        put_u64(out, w.busy_micros);
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<StatsReport, String> {
    let sessions_open = r.u64()?;
    let sessions_opened = r.u64()?;
    let sessions_evicted = r.u64()?;
    let sessions_evicted_budget = r.u64()?;
    let sessions_evicted_idle = r.u64()?;
    let session_budget_bytes = r.u64()?;
    let session_bytes_parked = r.u64()?;
    let enumerators_built = r.u64()?;
    let plan_cache_hits = r.u64()?;
    let plan_cache_misses = r.u64()?;
    let plan_cache_size = r.u64()?;
    let exec_pool_threads = r.u64()?;
    let ghd_last_plan = r.str()?;
    let enumeration = StatsSnapshot {
        pq_pushes: r.u64()?,
        pq_pops: r.u64()?,
        cells_created: r.u64()?,
        cells_reused: r.u64()?,
        answers: r.u64()?,
        tuple_allocs: r.u64()?,
        frontier_bytes: r.u64()?,
        frontier_peak_bytes: r.u64()?,
        ghd_bags: r.u64()?,
        ghd_estimated_rows: r.u64()?,
        ghd_fallbacks: r.u64()?,
        reduce_passes: r.u64()?,
        reduce_input_rows: r.u64()?,
        reduce_output_rows: r.u64()?,
        pool_tasks: r.u64()?,
        pool_steals: r.u64()?,
        pool_busy_micros: r.u64()?,
        requests_shed: r.u64()?,
        deadline_exceeded: r.u64()?,
        cancelled: r.u64()?,
        faults_injected: r.u64()?,
    };
    let transport = TransportCounters {
        epoll_waits: r.u64()?,
        wakeups: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        conns_accepted: r.u64()?,
        disconnects: r.u64()?,
    };
    let n = r.count(24)?;
    let per_worker = (0..n)
        .map(|_| {
            Ok(WorkerCounters {
                tasks: r.u64()?,
                steals: r.u64()?,
                busy_micros: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(StatsReport {
        sessions_open,
        sessions_opened,
        sessions_evicted,
        sessions_evicted_budget,
        sessions_evicted_idle,
        session_budget_bytes,
        session_bytes_parked,
        enumerators_built,
        plan_cache_hits,
        plan_cache_misses,
        plan_cache_size,
        exec_pool_threads,
        ghd_last_plan,
        enumeration,
        transport,
        per_worker,
    })
}

/// Encode one response as a binary payload (no frame prefix).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::Opened {
            session,
            columns,
            algorithm,
            plan_cached,
        } => {
            out.push(RESP_OPENED);
            put_u64(&mut out, *session);
            put_strings(&mut out, columns);
            put_str(&mut out, algorithm);
            put_bool(&mut out, *plan_cached);
        }
        Response::Page { rows, exhausted } => {
            out.push(RESP_PAGE);
            put_rows(&mut out, rows);
            put_bool(&mut out, *exhausted);
        }
        Response::Closed { existed } => {
            out.push(RESP_CLOSED);
            put_bool(&mut out, *existed);
        }
        Response::Cancelled { existed } => {
            out.push(RESP_CANCELLED);
            put_bool(&mut out, *existed);
        }
        Response::Result {
            columns,
            rows,
            algorithm,
            plan_cached,
        } => {
            out.push(RESP_RESULT);
            put_strings(&mut out, columns);
            put_rows(&mut out, rows);
            put_str(&mut out, algorithm);
            put_bool(&mut out, *plan_cached);
        }
        Response::Explained { text } => {
            out.push(RESP_EXPLAINED);
            put_str(&mut out, text);
        }
        Response::Stats(report) => {
            out.push(RESP_STATS);
            put_stats(&mut out, report);
        }
        Response::Metrics { body } => {
            out.push(RESP_METRICS);
            put_str(&mut out, body);
        }
        Response::Catalog { databases } => {
            out.push(RESP_CATALOG);
            put_strings(&mut out, databases);
        }
        Response::Pong => out.push(RESP_PONG),
        Response::Error {
            message,
            code,
            retry_after_millis,
        } => {
            out.push(RESP_ERROR);
            put_str(&mut out, message);
            put_str(&mut out, code);
            put_bool(&mut out, retry_after_millis.is_some());
            put_u64(&mut out, retry_after_millis.unwrap_or(0));
        }
    }
    out
}

/// Decode one response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut r = Reader::new(payload);
    let response = match r.u8()? {
        RESP_OPENED => Response::Opened {
            session: r.u64()?,
            columns: r.strings()?,
            algorithm: r.str()?,
            plan_cached: r.bool()?,
        },
        RESP_PAGE => Response::Page {
            rows: r.rows()?,
            exhausted: r.bool()?,
        },
        RESP_CLOSED => Response::Closed { existed: r.bool()? },
        RESP_CANCELLED => Response::Cancelled { existed: r.bool()? },
        RESP_RESULT => Response::Result {
            columns: r.strings()?,
            rows: r.rows()?,
            algorithm: r.str()?,
            plan_cached: r.bool()?,
        },
        RESP_EXPLAINED => Response::Explained { text: r.str()? },
        RESP_STATS => Response::Stats(Box::new(read_stats(&mut r)?)),
        RESP_METRICS => Response::Metrics { body: r.str()? },
        RESP_CATALOG => Response::Catalog {
            databases: r.strings()?,
        },
        RESP_PONG => Response::Pong,
        RESP_ERROR => {
            let message = r.str()?;
            let code = r.str()?;
            let has_retry = r.bool()?;
            let retry = r.u64()?;
            Response::Error {
                message,
                code,
                retry_after_millis: has_retry.then_some(retry),
            }
        }
        other => return Err(format!("unknown response tag {other}")),
    };
    r.finish()?;
    Ok(response)
}

/// Append one encoded response to `out` in the connection's protocol:
/// a JSON line (with its `\n`) or a binary frame.
pub fn append_response(protocol: WireProtocol, response: &Response, out: &mut Vec<u8>) {
    match protocol {
        WireProtocol::Json => {
            out.extend_from_slice(response.encode().as_bytes());
            out.push(b'\n');
        }
        WireProtocol::Binary => append_frame(out, &encode_response(response)),
    }
}

/// One parsed inbound item, protocol-independent.
#[derive(Debug, PartialEq)]
pub enum InboundItem {
    /// A well-formed request, ready for dispatch.
    Request(Request),
    /// A malformed request that still left framing intact (bad JSON on a
    /// complete line, a bad payload inside a complete frame): answer with
    /// this error and keep the connection.
    Malformed(String),
}

/// Extract the next complete inbound item from `pending`, or `Ok(None)`
/// when more bytes are needed. `Err` means framing itself is broken
/// (oversized binary length prefix): answer with a final error and close.
pub fn next_inbound(
    protocol: WireProtocol,
    pending: &mut Vec<u8>,
) -> Result<Option<InboundItem>, String> {
    match protocol {
        WireProtocol::Json => loop {
            let Some(newline) = pending.iter().position(|&b| b == b'\n') else {
                return Ok(None);
            };
            let line_bytes: Vec<u8> = pending.drain(..=newline).collect();
            match std::str::from_utf8(&line_bytes) {
                Ok(line) if line.trim().is_empty() => continue, // blank keep-alive line
                Ok(line) => {
                    return Ok(Some(match Request::decode(line.trim()) {
                        Ok(request) => InboundItem::Request(request),
                        Err(message) => InboundItem::Malformed(message),
                    }))
                }
                Err(_) => {
                    return Ok(Some(InboundItem::Malformed(
                        "request line is not valid UTF-8".to_string(),
                    )))
                }
            }
        },
        WireProtocol::Binary => match split_frame(pending)? {
            None => Ok(None),
            Some(payload) => Ok(Some(match decode_request(&payload) {
                Ok(request) => InboundItem::Request(request),
                Err(message) => InboundItem::Malformed(message),
            })),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Open {
                db: "dblp".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a LIMIT 5".into(),
                deadline_millis: None,
            },
            Request::Open {
                db: "dblp".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a LIMIT 5".into(),
                deadline_millis: Some(1500),
            },
            Request::Fetch {
                session: u64::MAX,
                k: 10,
            },
            Request::Close { session: 7 },
            Request::Cancel { session: 9 },
            Request::Query {
                db: "d".into(),
                sql: "SELECT DISTINCT a FROM T".into(),
            },
            Request::Explain {
                db: "d".into(),
                sql: "SELECT DISTINCT a FROM T ORDER BY a".into(),
                analyze: true,
            },
            Request::Stats,
            Request::Metrics,
            Request::Catalog,
            Request::Ping,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Opened {
                session: 3,
                columns: vec!["a1".into(), "a2".into()],
                algorithm: "acyclic".into(),
                plan_cached: true,
            },
            Response::Page {
                // u64-exact: values beyond 2^53 survive, unlike any
                // float-backed JSON implementation.
                rows: vec![vec![u64::MAX, 2], vec![3, 1 << 60]],
                exhausted: false,
            },
            Response::Closed { existed: true },
            Response::Cancelled { existed: false },
            Response::Result {
                columns: vec!["x".into()],
                rows: vec![vec![9]],
                algorithm: "union-merge".into(),
                plan_cached: false,
            },
            Response::Explained {
                text: "EXPLAIN\nstatement: join-project (2 atoms)\n".into(),
            },
            Response::Stats(Box::new(StatsReport {
                sessions_open: 1,
                sessions_opened: 2,
                ghd_last_plan: "cycle-split(0,3) over 6 atoms".into(),
                transport: TransportCounters {
                    epoll_waits: 11,
                    wakeups: 12,
                    bytes_in: 13,
                    bytes_out: 14,
                    conns_accepted: 15,
                    disconnects: 16,
                },
                per_worker: vec![WorkerCounters {
                    tasks: 30,
                    steals: 31,
                    busy_micros: 32,
                }],
                ..StatsReport::default()
            })),
            Response::Metrics {
                body: "# TYPE re_sessions_open gauge\nre_sessions_open 1\n".into(),
            },
            Response::Catalog {
                databases: vec!["a".into(), "b".into()],
            },
            Response::Pong,
            Response::error("boom"),
            Response::overloaded("too busy", 250),
            Response::error_coded("query deadline exceeded", "deadline_exceeded"),
        ]
    }

    #[test]
    fn requests_roundtrip_binary() {
        for req in sample_requests() {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip_binary() {
        for resp in sample_responses() {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn negotiation_decides_from_first_bytes() {
        assert_eq!(negotiate(b""), Negotiation::NeedMore);
        assert_eq!(negotiate(b"R"), Negotiation::NeedMore);
        assert_eq!(negotiate(b"RE"), Negotiation::NeedMore);
        assert_eq!(negotiate(b"REB"), Negotiation::NeedMore);
        assert_eq!(negotiate(b"REB1"), Negotiation::Binary);
        assert_eq!(negotiate(b"REB1\x05\x00\x00\x00"), Negotiation::Binary);
        assert_eq!(negotiate(b"{\"cmd\":\"ping\"}"), Negotiation::Json);
        assert_eq!(negotiate(b" "), Negotiation::Json);
        assert_eq!(negotiate(b"REX"), Negotiation::Json, "diverged from magic");
        // A newline resolves a stalled magic prefix to JSON: a line
        // client that sent "RE\n" gets an error line, not a hang.
        assert_eq!(negotiate(b"RE\n"), Negotiation::Json);
    }

    #[test]
    fn frames_split_and_reassemble() {
        let mut wire = Vec::new();
        append_frame(&mut wire, b"abc");
        append_frame(&mut wire, b"");
        append_frame(&mut wire, b"defg");
        let mut pending = Vec::new();
        let mut got = Vec::new();
        // Feed one byte at a time: frames must reassemble across
        // arbitrarily split reads.
        for byte in wire {
            pending.push(byte);
            while let Some(p) = split_frame(&mut pending).unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"".to_vec(), b"defg".to_vec()]);
        assert!(pending.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut pending = (u32::MAX).to_le_bytes().to_vec();
        pending.extend_from_slice(b"junk");
        assert!(split_frame(&mut pending).is_err());
        let mut pending = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        assert!(split_frame(&mut pending).is_err());
    }

    #[test]
    fn truncated_payloads_error_cleanly() {
        for req in sample_requests() {
            let full = encode_request(&req);
            for cut in 0..full.len() {
                assert!(
                    decode_request(&full[..cut]).is_err(),
                    "truncated {req:?} at {cut} must not decode"
                );
            }
        }
        for resp in sample_responses() {
            let full = encode_response(&resp);
            for cut in 0..full.len() {
                assert!(
                    decode_response(&full[..cut]).is_err(),
                    "truncated response at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert!(decode_request(&payload).is_err());
    }

    #[test]
    fn corrupt_element_counts_do_not_balloon() {
        // A "columns" count of ~4 billion with a 10-byte payload must be
        // rejected by the count bound, not attempted.
        let mut payload = vec![RESP_OPENED];
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX); // columns count
        assert!(decode_response(&payload).is_err());
    }

    #[test]
    fn json_inbound_skips_blanks_and_flags_bad_lines() {
        let mut pending = b"\n  \n{\"cmd\":\"ping\"}\nnot json\n".to_vec();
        assert_eq!(
            next_inbound(WireProtocol::Json, &mut pending).unwrap(),
            Some(InboundItem::Request(Request::Ping))
        );
        match next_inbound(WireProtocol::Json, &mut pending).unwrap() {
            Some(InboundItem::Malformed(_)) => {}
            other => panic!("expected a malformed item, got {other:?}"),
        }
        assert_eq!(
            next_inbound(WireProtocol::Json, &mut pending).unwrap(),
            None
        );
    }

    #[test]
    fn binary_inbound_flags_bad_payloads_but_keeps_framing() {
        let mut pending = Vec::new();
        append_frame(&mut pending, &[200]); // unknown tag
        append_frame(&mut pending, &encode_request(&Request::Ping));
        match next_inbound(WireProtocol::Binary, &mut pending).unwrap() {
            Some(InboundItem::Malformed(_)) => {}
            other => panic!("expected a malformed item, got {other:?}"),
        }
        assert_eq!(
            next_inbound(WireProtocol::Binary, &mut pending).unwrap(),
            Some(InboundItem::Request(Request::Ping))
        );
    }
}
