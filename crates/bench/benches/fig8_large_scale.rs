//! Figure 8 (a–d): the large-scale experiments — 2-hop and 3-hop
//! neighbourhood queries on Memetracker- and Friendster-style membership
//! graphs, under SUM ranking.
//!
//! In the paper none of the baseline engines finished within five hours on
//! these datasets, so (exactly like the paper's figure) only LinDelay is
//! measured here; the instances are scaled down from hundreds of millions
//! of tuples to laptop scale, which is recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use re_bench::{run_sum_engine, Engine, Scale};
use re_workloads::social::SocialFlavor;
use re_workloads::SocialWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let factor = Scale::from_env().factor();
    let mut group = c.benchmark_group("fig8_large_scale");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for flavor in [SocialFlavor::Memetracker, SocialFlavor::Friendster] {
        let w = SocialWorkload::generate(flavor, 40_000 * factor, 7);
        for spec in [w.two_hop(), w.three_hop()] {
            for k in [10usize, 1_000, 10_000] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/LinDelay", spec.name), k),
                    &k,
                    |b, &k| b.iter(|| run_sum_engine(Engine::LinDelay, &spec, w.db(), k)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(fig8, bench);
criterion_main!(fig8);
